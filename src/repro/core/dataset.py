"""Trajectory logging and the ArchGym dataset (paper §3.4, §7, Fig. 9).

Every interaction between an agent and an environment produces a
:class:`Transition` (action, observed cost metrics, reward). Transitions
accumulate in an :class:`ArchGymDataset`, tagged with their *source* (the
agent that generated them) so that datasets can later be

- **merged** for size (``ArchGymDataset.merge``), and
- **sampled by source** for diversity studies (``sample``,
  ``filter_source``) — the Fig. 10 "diverse vs. ACO-only" experiment.

Datasets convert to feature/target matrices for proxy-model training
(``to_matrices``) and round-trip to JSONL (human-readable) and NPZ
(compact) files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.core.spaces import CompositeSpace

__all__ = ["Transition", "ArchGymDataset"]


@dataclass(frozen=True)
class Transition:
    """One logged agent/environment interaction."""

    action: Dict[str, Any]
    metrics: Dict[str, float]
    reward: float
    source: str = "unknown"
    step: int = 0
    info: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "action": self.action,
            "metrics": self.metrics,
            "reward": self.reward,
            "source": self.source,
            "step": self.step,
            "info": self.info,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "Transition":
        return cls(
            action=dict(record["action"]),
            metrics={k: float(v) for k, v in record["metrics"].items()},
            reward=float(record["reward"]),
            source=str(record.get("source", "unknown")),
            step=int(record.get("step", 0)),
            info=dict(record.get("info", {})),
        )


class ArchGymDataset:
    """An append-only, source-tagged collection of :class:`Transition`.

    Parameters
    ----------
    env_id:
        Identifier of the environment the data came from. Merging datasets
        from different environments is rejected — their actions live in
        different spaces.
    """

    def __init__(self, env_id: str = "", transitions: Optional[Iterable[Transition]] = None):
        self.env_id = env_id
        self._transitions: List[Transition] = list(transitions or [])

    # -- collection protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions)

    def __getitem__(self, index: int) -> Transition:
        return self._transitions[index]

    def append(self, transition: Transition) -> None:
        self._transitions.append(transition)

    def extend(self, transitions: Iterable[Transition]) -> None:
        self._transitions.extend(transitions)

    # -- provenance ------------------------------------------------------------

    @property
    def sources(self) -> List[str]:
        """Distinct source tags, in first-seen order."""
        seen: Dict[str, None] = {}
        for t in self._transitions:
            seen.setdefault(t.source, None)
        return list(seen)

    def source_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for t in self._transitions:
            counts[t.source] = counts.get(t.source, 0) + 1
        return counts

    def filter_source(self, source: str) -> "ArchGymDataset":
        """Dataset restricted to transitions from one agent source."""
        return ArchGymDataset(
            self.env_id, [t for t in self._transitions if t.source == source]
        )

    # -- size & diversity operations (Fig. 9 / Fig. 10) ------------------------

    def merge(self, other: "ArchGymDataset") -> "ArchGymDataset":
        """Concatenate two datasets from the same environment."""
        if self.env_id and other.env_id and self.env_id != other.env_id:
            raise DatasetError(
                f"cannot merge datasets from different environments "
                f"({self.env_id!r} vs {other.env_id!r})"
            )
        merged = ArchGymDataset(self.env_id or other.env_id)
        merged.extend(self._transitions)
        merged.extend(other._transitions)
        return merged

    @staticmethod
    def merge_all(
        datasets: Sequence["ArchGymDataset"], env_id: str = ""
    ) -> "ArchGymDataset":
        """Concatenate many datasets in order. An explicit ``env_id``
        permits merging an empty list (the parallel sweep aggregator may
        have zero logging trials)."""
        if not datasets:
            if env_id:
                return ArchGymDataset(env_id)
            raise DatasetError("merge_all needs at least one dataset or an env_id")
        merged = datasets[0]
        for d in datasets[1:]:
            merged = merged.merge(d)
        return merged

    def renumber_steps(self) -> None:
        """Rewrite every transition's ``step`` to its global 1-based
        position. Per-worker trajectory logs restart their step counters;
        after merging, this restores the single-process numbering."""
        from dataclasses import replace

        self._transitions = [
            replace(t, step=i + 1) for i, t in enumerate(self._transitions)
        ]

    def sample(
        self, n: int, rng: np.random.Generator, replace: bool = False
    ) -> "ArchGymDataset":
        """Uniformly subsample ``n`` transitions."""
        if n < 0:
            raise DatasetError(f"cannot sample a negative count ({n})")
        if not replace and n > len(self):
            raise DatasetError(
                f"cannot sample {n} without replacement from {len(self)} transitions"
            )
        idx = rng.choice(len(self), size=n, replace=replace)
        return ArchGymDataset(self.env_id, [self._transitions[i] for i in idx])

    def sample_balanced(
        self, n: int, rng: np.random.Generator
    ) -> "ArchGymDataset":
        """Sample ``n`` transitions spread as evenly as possible across
        sources — the "diverse dataset" construction of §7.1."""
        sources = self.sources
        if not sources:
            raise DatasetError("cannot sample from an empty dataset")
        per_source = {s: self.filter_source(s) for s in sources}
        quota, remainder = divmod(n, len(sources))
        out = ArchGymDataset(self.env_id)
        for i, s in enumerate(sources):
            want = quota + (1 if i < remainder else 0)
            pool = per_source[s]
            take = min(want, len(pool))
            if take:
                out = out.merge(pool.sample(take, rng))
        # Top up from the full pool if some source ran short.
        if len(out) < n:
            out = out.merge(self.sample(n - len(out), rng, replace=True))
        return out

    # -- matrix views for proxy training ---------------------------------------

    def to_matrices(
        self, space: CompositeSpace, targets: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(X, Y)`` where ``X`` encodes actions as unit vectors
        (one row per transition) and ``Y`` stacks the requested metric
        columns. This is the feature representation used to train the
        random-forest proxy models of §7.2."""
        if not self._transitions:
            raise DatasetError("cannot build matrices from an empty dataset")
        X = np.stack([space.to_unit_vector(t.action) for t in self._transitions])
        Y = np.empty((len(self._transitions), len(targets)), dtype=np.float64)
        for j, name in enumerate(targets):
            for i, t in enumerate(self._transitions):
                if name not in t.metrics:
                    raise DatasetError(
                        f"transition {i} is missing metric {name!r}"
                    )
                Y[i, j] = t.metrics[name]
        return X, Y

    def rewards(self) -> np.ndarray:
        return np.array([t.reward for t in self._transitions], dtype=np.float64)

    def best(self, higher_is_better: bool = True) -> Transition:
        """The transition with the best logged reward."""
        if not self._transitions:
            raise DatasetError("dataset is empty")
        key = max if higher_is_better else min
        return key(self._transitions, key=lambda t: t.reward)

    # -- persistence -------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """Write one JSON record per line, preceded by a header record."""
        path = Path(path)
        with path.open("w") as f:
            f.write(json.dumps({"env_id": self.env_id, "format": "archgym-jsonl-v1"}))
            f.write("\n")
            for t in self._transitions:
                f.write(json.dumps(t.to_record()))
                f.write("\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "ArchGymDataset":
        path = Path(path)
        with path.open() as f:
            lines = [line for line in f if line.strip()]
        if not lines:
            raise DatasetError(f"{path} is empty")
        header = json.loads(lines[0])
        if header.get("format") != "archgym-jsonl-v1":
            raise DatasetError(f"{path} is not an ArchGym JSONL dataset")
        ds = cls(env_id=header.get("env_id", ""))
        ds.extend(Transition.from_record(json.loads(line)) for line in lines[1:])
        return ds

    def save_npz(self, path: str | Path, space: CompositeSpace, targets: Sequence[str]) -> None:
        """Compact numeric export: encoded actions, metric matrix, rewards."""
        X, Y = self.to_matrices(space, targets)
        np.savez_compressed(
            Path(path),
            X=X,
            Y=Y,
            rewards=self.rewards(),
            targets=np.array(list(targets)),
            sources=np.array([t.source for t in self._transitions]),
            env_id=np.array(self.env_id),
        )

    def __repr__(self) -> str:
        return (
            f"ArchGymDataset(env_id={self.env_id!r}, n={len(self)}, "
            f"sources={self.source_counts()})"
        )
