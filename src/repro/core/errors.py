"""Exception hierarchy for the ArchGym reproduction.

All library-raised exceptions derive from :class:`ArchGymError` so callers
can catch the whole family with one clause while still discriminating on
the specific subtype when needed.
"""

from __future__ import annotations


class ArchGymError(Exception):
    """Base class for all errors raised by this library."""


class SpaceError(ArchGymError):
    """A parameter-space definition or lookup is invalid."""


class InvalidActionError(ArchGymError):
    """An action does not belong to the environment's action space."""


class EnvironmentError_(ArchGymError):
    """An environment was used incorrectly (e.g. ``step`` before ``reset``)."""


class RegistryError(ArchGymError):
    """An environment id is unknown or already registered."""


class DatasetError(ArchGymError):
    """A dataset operation (merge, sample, serialize) is invalid."""


class SimulationError(ArchGymError):
    """A substrate simulator was configured with inconsistent parameters."""


class AgentError(ArchGymError):
    """An agent was configured or driven incorrectly."""


class ExecutorError(ArchGymError):
    """The parallel sweep executor was misconfigured (bad worker count,
    unpicklable task, worker crash)."""


class ShardError(ArchGymError):
    """A sweep shard directory is missing, foreign to the requested
    sweep (fingerprint mismatch), or inconsistent (missing shards)."""


class CacheStoreError(ArchGymError):
    """The shared evaluation cache store is corrupt or misconfigured."""


class ServiceError(ArchGymError):
    """Talking to (or serving) the remote evaluation service failed:
    unreachable server, timeout, torn response body, or a server-side
    evaluation error. Client-side, raised only after the retry policy
    is exhausted — never a hang, never a silently wrong metric."""


class ServiceTransportError(ServiceError):
    """The *transport* to an evaluation host failed (connection refused
    or reset, timeout, torn body) and the client's retry policy is
    exhausted. Distinct from a plain :class:`ServiceError` the server
    itself produced (an HTTP 4xx/5xx with an error body): a transport
    failure says nothing about the request, so a multi-host scheduler
    may fail it over to another host — whereas a server-produced error
    is deterministic and would fail identically everywhere."""


class ProxyModelError(ArchGymError):
    """A proxy cost model operation (fit, predict) is invalid."""
