"""Core gym infrastructure: spaces, environments, rewards, datasets."""

from repro.core.cache_store import ServerCacheStore, SharedCacheStore
from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv, EnvStats, canonical_action_key
from repro.core.errors import (
    AgentError,
    ArchGymError,
    CacheStoreError,
    DatasetError,
    EnvironmentError_,
    ExecutorError,
    InvalidActionError,
    ProxyModelError,
    RegistryError,
    ServiceError,
    ShardError,
    SimulationError,
    SpaceError,
)
from repro.core.registry import make, register, registered_ids
from repro.core.rewards import (
    BudgetDistanceReward,
    InverseReward,
    JointTargetReward,
    RewardSpec,
    TargetReward,
)
from repro.core.spaces import (
    Categorical,
    CompositeSpace,
    Continuous,
    Discrete,
    Parameter,
)

__all__ = [
    "ArchGymDataset",
    "Transition",
    "ArchGymEnv",
    "EnvStats",
    "ServerCacheStore",
    "SharedCacheStore",
    "canonical_action_key",
    "ArchGymError",
    "AgentError",
    "CacheStoreError",
    "DatasetError",
    "ExecutorError",
    "ShardError",
    "EnvironmentError_",
    "InvalidActionError",
    "ProxyModelError",
    "RegistryError",
    "ServiceError",
    "SimulationError",
    "SpaceError",
    "make",
    "register",
    "registered_ids",
    "RewardSpec",
    "TargetReward",
    "JointTargetReward",
    "BudgetDistanceReward",
    "InverseReward",
    "Parameter",
    "Categorical",
    "Discrete",
    "Continuous",
    "CompositeSpace",
]
