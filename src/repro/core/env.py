"""The ArchGym environment base class (paper §3.1, §3.3).

An environment encapsulates an architecture *cost model* plus a target
*workload* and exposes the OpenAI-gym style interface the paper
standardizes on:

    observation, info = env.reset(seed=...)
    observation, reward, terminated, truncated, info = env.step(action)

- **action** — a dict assigning every parameter in ``env.action_space``
  (a :class:`~repro.core.spaces.CompositeSpace`) an admissible value.
- **observation** — the cost-model output vector (e.g. ``<latency,
  power, energy>`` for DRAMGym), in the order given by
  ``env.observation_metrics``.
- **reward** — the scalar produced by ``env.reward_spec`` (Table 3).

Episodes are parameter-*suggestion* loops: each ``step`` evaluates one
design point. ``episode_length`` bounds the suggestions per episode
(``truncated``), and an episode ``terminated`` early once the design
meets the user target. Every step is logged to an attached
:class:`~repro.core.dataset.ArchGymDataset` (Fig. 9).

Because the built-in cost models are deterministic functions of the
action, an environment can memoize them: :meth:`ArchGymEnv.enable_cache`
turns on a design-point evaluation cache keyed on the canonicalized
action dict, so repeated queries of the same design skip the simulator
entirely (the same wall-clock argument that motivates the paper's proxy
models, Fig. 12). Cache hits still produce a full gym step — reward,
logging, episode accounting — only the ``evaluate`` call is skipped.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.dataset import ArchGymDataset, Transition
from repro.core.errors import EnvironmentError_, InvalidActionError
from repro.core.rewards import RewardSpec
from repro.core.spaces import CompositeSpace

if TYPE_CHECKING:  # avoid an import cycle; the store is duck-typed
    from repro.core.cache_store import SharedCacheStore

__all__ = ["ArchGymEnv", "EnvStats", "canonical_action_key"]

Observation = np.ndarray
StepResult = Tuple[Observation, float, bool, bool, Dict[str, Any]]

ActionKey = Tuple[Tuple[str, Any], ...]


def _freeze(value: Any) -> Any:
    """Recursively convert a value to a hashable equivalent."""
    if isinstance(value, np.ndarray):
        return tuple(_freeze(v) for v in value.tolist())
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def canonical_action_key(action: Mapping[str, Any]) -> ActionKey:
    """A hashable, order-insensitive identity for a design point.

    Numpy scalars are unwrapped to native Python values so that an
    agent proposing ``np.int64(4)`` and one proposing ``4`` hit the
    same cache line; arrays and (nested) sequences are frozen to
    tuples.
    """
    return tuple((name, _freeze(action[name])) for name in sorted(action))


class EnvStats:
    """Counters the sweep harness and Fig. 12 speedup bench rely on."""

    def __init__(self) -> None:
        # Env-lifetime step/episode accounting, consumed in place by the
        # gym surface and Fig. 8 timing — never a per-trial provenance
        # counter, so it is not threaded into SearchResult/shards.
        self.total_steps = 0  # repro-lint: allow(counter-threading)
        self.total_episodes = 0  # repro-lint: allow(counter-threading)
        self.total_sim_time = 0.0  # seconds spent inside the cost model
        self.cache_hits = 0
        self.cache_misses = 0
        #: Evaluations answered by the cross-process shared store — a
        #: design point some *other* trial (or process) already paid for.
        self.shared_cache_hits = 0
        #: Cost-model calls dispatched to a remote evaluation backend
        #: (a subset of the runs counted by ``cache_misses``).
        self.remote_evals = 0
        #: ``remote_evals`` broken down by the host URL that answered —
        #: the provenance a multi-host sweep reports per trial.
        self.remote_evals_by_host: Dict[str, int] = {}
        #: Generation proposals considered by the online proxy screen.
        self.proxy_screened = 0
        #: Screened proposals sent for real evaluation (top-k + the
        #: honesty-refresh slice); ``screened - accepted`` were answered
        #: by the surrogate alone.
        self.proxy_accepted = 0
        #: Real evaluations spent on the honesty-refresh slice — points
        #: the screen would have rejected, simulated anyway to keep the
        #: proxy's training corpus unbiased.
        self.proxy_refresh_evals = 0
        #: Worst relative validation RMSE of the proxy's latest refit
        #: (0.0 until the screen has fitted a model).
        self.proxy_last_rmse = 0.0

    def __repr__(self) -> str:
        return (
            f"EnvStats(steps={self.total_steps}, episodes={self.total_episodes}, "
            f"sim_time={self.total_sim_time:.3f}s, "
            f"cache={self.cache_hits}h/{self.cache_misses}m"
            f"/{self.shared_cache_hits}s, remote={self.remote_evals})"
        )


class ArchGymEnv:
    """Abstract base for all ArchGym environments.

    Subclasses define the action space, the observation metric names, the
    reward specification, and :meth:`evaluate` — the call into the
    underlying architecture cost model.

    Parameters
    ----------
    action_space:
        The design parameter space (Fig. 3).
    observation_metrics:
        Ordered metric names forming the observation vector.
    reward_spec:
        The Table 3 reward for this environment/objective.
    episode_length:
        Number of design suggestions per episode before truncation.
    terminate_on_target:
        Whether meeting the reward spec's target ends the episode early.
    """

    #: Environment id, set by subclasses (e.g. ``"DRAMGym-v0"``).
    env_id: str = "ArchGymEnv-v0"

    def __init__(
        self,
        action_space: CompositeSpace,
        observation_metrics: Sequence[str],
        reward_spec: RewardSpec,
        episode_length: int = 1,
        terminate_on_target: bool = False,
    ) -> None:
        if episode_length < 1:
            raise EnvironmentError_("episode_length must be >= 1")
        self.action_space = action_space
        self.observation_metrics = list(observation_metrics)
        self.reward_spec = reward_spec
        self.episode_length = episode_length
        self.terminate_on_target = terminate_on_target
        self.stats = EnvStats()
        self._backend: Optional[Any] = None
        self._eval_cache: "Optional[OrderedDict[ActionKey, Dict[str, float]]]" = None
        self._eval_cache_maxsize = 0
        self._shared_cache: "Optional[SharedCacheStore]" = None
        self.dataset: Optional[ArchGymDataset] = None
        self._source_tag = "unknown"
        self._rng = np.random.default_rng(0)
        self._steps_in_episode = 0
        self._needs_reset = True

    # -- cost model hook --------------------------------------------------------

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        """Run the cost model for one design point.

        Returns a metric dictionary containing at least every name in
        ``observation_metrics``. Subclasses implement this by invoking
        their substrate simulator.
        """
        raise NotImplementedError

    # -- evaluation dispatch -------------------------------------------------------

    @property
    def backend(self) -> Optional[Any]:
        """The attached evaluation backend, or ``None`` for in-process."""
        return self._backend

    def attach_backend(self, backend: Any) -> None:
        """Dispatch every cost-model call through ``backend``.

        ``backend`` is duck-typed: it needs one method,
        ``evaluate(env_id, action) -> Dict[str, float]`` — e.g.
        :class:`repro.service.RemoteBackend`, which forwards the design
        point to an evaluation service over HTTP. Everything above the
        cost model (reward, caching tiers, episode accounting, dataset
        logging) stays local, so an unmodified agent transparently
        evaluates over the network; remote calls are counted in
        ``stats.remote_evals``.
        """
        self._backend = backend

    def detach_backend(self) -> Optional[Any]:
        """Return to in-process evaluation; hands back the old backend."""
        backend, self._backend = self._backend, None
        return backend

    def _dispatch_evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        """One cost-model run, wherever the backend says it happens."""
        if self._backend is None:
            return self.evaluate(action)
        metrics = self._backend.evaluate(self.env_id, action)
        self.stats.remote_evals += 1
        # A backend that knows which host answered (a multi-host pool,
        # or a single client reporting its base URL) gets the
        # evaluation attributed to that host.
        host = getattr(self._backend, "last_host", None)
        if host is not None:
            by_host = self.stats.remote_evals_by_host
            by_host[host] = by_host.get(host, 0) + 1
        return metrics

    def _dispatch_evaluate_batch(
        self, actions: Sequence[Mapping[str, Any]]
    ) -> List[Dict[str, float]]:
        """Many cost-model runs, batched through the backend when it
        supports batching (``evaluate_batch(env_id, actions)``).

        Counter parity with the serial path: ``remote_evals`` counts
        one per design point either way, and per-host attribution uses
        the backend's per-point ``last_hosts`` when it reports one (a
        pool that scattered the batch over several hosts), falling
        back to charging the whole batch to ``last_host``.
        """
        if self._backend is None:
            return [self.evaluate(action) for action in actions]
        batch_fn = getattr(self._backend, "evaluate_batch", None)
        if batch_fn is None:
            return [self._dispatch_evaluate(action) for action in actions]
        metrics_list = batch_fn(self.env_id, list(actions))
        self.stats.remote_evals += len(actions)
        hosts = getattr(self._backend, "last_hosts", None)
        if hosts is None:
            host = getattr(self._backend, "last_host", None)
            hosts = [host] * len(actions)
        by_host = self.stats.remote_evals_by_host
        for host in hosts:
            if host is not None:
                by_host[host] = by_host.get(host, 0) + 1
        return metrics_list

    def _dispatch_evaluate_batch_stream(
        self, actions: Sequence[Mapping[str, Any]]
    ) -> Iterator[Tuple[int, List[Dict[str, float]]]]:
        """Streaming variant of :meth:`_dispatch_evaluate_batch`:
        yields ``(start_index, metrics_list)`` chunks as the backend
        finishes them, in **arrival** order.

        Counter parity with the barrier dispatch: ``remote_evals`` and
        per-host attribution are charged chunk by chunk as results
        land and sum to exactly what one whole-batch call records. A
        backend without an ``evaluate_batch_stream`` hook — or no
        backend at all — degenerates to a single blocking whole-batch
        chunk, so callers never need to care what transport they got.
        """
        stream_fn = getattr(self._backend, "evaluate_batch_stream", None)
        if self._backend is None or stream_fn is None:
            yield 0, self._dispatch_evaluate_batch(actions)
            return
        by_host = self.stats.remote_evals_by_host
        for start, metrics_list, host in stream_fn(self.env_id, list(actions)):
            self.stats.remote_evals += len(metrics_list)
            if host is not None:
                by_host[host] = by_host.get(host, 0) + len(metrics_list)
            yield start, metrics_list

    # -- evaluation cache ---------------------------------------------------------

    @property
    def cache_enabled(self) -> bool:
        return self._eval_cache is not None

    def enable_cache(self, maxsize: int = 4096) -> None:
        """Memoize :meth:`evaluate` on the canonicalized action.

        Only valid for deterministic cost models (all built-in
        environments qualify): a cached step returns the stored metric
        dict instead of re-running the simulator. The memo is a bounded
        LRU of ``maxsize`` design points (``maxsize <= 0`` is a no-op).
        DSE agents revisit designs constantly — GA elites, ACO's
        converged trails, BO's incumbent — so hit rates are high in
        practice. Hit/miss counts land in ``stats.cache_hits`` /
        ``stats.cache_misses``.
        """
        if maxsize <= 0:
            return
        if self._eval_cache is None:
            self._eval_cache = OrderedDict()
        self._eval_cache_maxsize = maxsize
        while len(self._eval_cache) > maxsize:
            self._eval_cache.popitem(last=False)

    def disable_cache(self) -> None:
        """Stop memoizing and drop any stored design points."""
        self._eval_cache = None
        self._eval_cache_maxsize = 0

    def clear_cache(self) -> None:
        """Drop stored design points but keep caching enabled."""
        if self._eval_cache is not None:
            self._eval_cache.clear()

    def cache_info(self) -> Dict[str, int]:
        """``{"hits", "misses", "shared_hits", "size"}`` for the
        evaluation cache tiers."""
        return {
            "hits": self.stats.cache_hits,
            "misses": self.stats.cache_misses,
            "shared_hits": self.stats.shared_cache_hits,
            "size": len(self._eval_cache) if self._eval_cache is not None else 0,
        }

    # -- shared (cross-process) cache tier ----------------------------------------

    @property
    def shared_cache(self) -> "Optional[SharedCacheStore]":
        return self._shared_cache

    def attach_shared_cache(self, store: "SharedCacheStore") -> None:
        """Consult ``store`` as a second cache tier behind the in-memory
        LRU (and populate it on every simulator run).

        The store outlives this environment, so concurrent trials of
        one sweep — and resumed re-runs — reuse each other's design
        points. Only valid for deterministic cost models, same as
        :meth:`enable_cache`. Hits land in ``stats.shared_cache_hits``;
        they count as neither a local hit nor a miss, so the exact
        "misses == simulator runs" contract is preserved.
        """
        self._shared_cache = store

    def detach_shared_cache(self) -> "Optional[SharedCacheStore]":
        store, self._shared_cache = self._shared_cache, None
        return store

    def _remember_local(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Insert into the in-memory LRU (if enabled), evicting oldest."""
        if self._eval_cache is None:
            return
        self._eval_cache[key] = dict(metrics)
        self._eval_cache.move_to_end(key)
        while len(self._eval_cache) > self._eval_cache_maxsize:
            self._eval_cache.popitem(last=False)

    # -- dataset plumbing ---------------------------------------------------------

    def attach_dataset(self, dataset: ArchGymDataset, source: str = "unknown") -> None:
        """Start logging every step into ``dataset``, tagged with ``source``
        (typically the agent name + hyperparameter hash)."""
        if dataset.env_id and dataset.env_id != self.env_id:
            raise EnvironmentError_(
                f"dataset bound to {dataset.env_id!r}, not {self.env_id!r}"
            )
        dataset.env_id = self.env_id
        self.dataset = dataset
        self._source_tag = source

    def detach_dataset(self) -> Optional[ArchGymDataset]:
        ds, self.dataset = self.dataset, None
        return ds

    def set_source(self, source: str) -> None:
        """Change the provenance tag without replacing the dataset."""
        self._source_tag = source

    # -- gym API -------------------------------------------------------------------

    def reset(
        self, seed: Optional[int] = None, options: Optional[Dict[str, Any]] = None
    ) -> Tuple[Observation, Dict[str, Any]]:
        """Begin a new episode. Returns a zero observation (no design has
        been evaluated yet) and an info dict."""
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._steps_in_episode = 0
        self._needs_reset = False
        self.stats.total_episodes += 1
        observation = np.zeros(len(self.observation_metrics), dtype=np.float64)
        return observation, {"env_id": self.env_id}

    def step(self, action: Mapping[str, Any]) -> StepResult:
        """Evaluate one design point and return the gym 5-tuple."""
        if self._needs_reset:
            raise EnvironmentError_("call reset() before step()")
        try:
            self.action_space.validate(action)
        except Exception as exc:
            raise InvalidActionError(str(exc)) from exc

        key = (
            canonical_action_key(action)
            if self._eval_cache is not None or self._shared_cache is not None
            else None
        )
        metrics: Optional[Dict[str, float]] = None
        if self._eval_cache is not None and key is not None:
            cached = self._eval_cache.get(key)
            if cached is not None:
                self.stats.cache_hits += 1
                self._eval_cache.move_to_end(key)
                metrics = dict(cached)
        if metrics is None and self._shared_cache is not None and key is not None:
            shared = self._shared_cache.get(key)
            if shared is not None:
                self.stats.shared_cache_hits += 1
                metrics = dict(shared)
                self._remember_local(key, shared)
        if metrics is None:
            start = time.perf_counter()
            metrics = self._dispatch_evaluate(action)
            self.stats.total_sim_time += time.perf_counter() - start

            missing = [m for m in self.observation_metrics if m not in metrics]
            if missing:
                raise EnvironmentError_(
                    f"cost model did not report metrics {missing}; got {sorted(metrics)}"
                )
            if key is not None:
                self.stats.cache_misses += 1
                clean = {k: float(v) for k, v in metrics.items()}
                self._remember_local(key, clean)
                if self._shared_cache is not None:
                    self._shared_cache.put(key, clean)

        reward = self.reward_spec.compute(metrics)
        observation = np.array(
            [metrics[m] for m in self.observation_metrics], dtype=np.float64
        )

        self._steps_in_episode += 1
        self.stats.total_steps += 1

        target_met = self.reward_spec.meets_target(metrics)
        terminated = bool(self.terminate_on_target and target_met)
        truncated = self._steps_in_episode >= self.episode_length
        if terminated or truncated:
            self._needs_reset = True

        info: Dict[str, Any] = {
            "metrics": dict(metrics),
            "target_met": target_met,
            "step": self._steps_in_episode,
        }

        if self.dataset is not None:
            self.dataset.append(
                Transition(
                    action=dict(action),
                    metrics={k: float(v) for k, v in metrics.items()},
                    reward=float(reward),
                    source=self._source_tag,
                    step=self.stats.total_steps,
                )
            )

        return observation, float(reward), terminated, truncated, info

    def step_batch(
        self, actions: Sequence[Mapping[str, Any]]
    ) -> List[StepResult]:
        """Evaluate a whole generation of design points in one call.

        Semantically this is ``[step(a) for a in actions]`` — same
        rewards, cache counters, episode accounting, dataset rows, and
        step numbering, byte for byte — except that the design points
        no cache tier can answer are sent through the backend's
        ``evaluate_batch`` hook *together*: one HTTP round trip per
        generation on a remote service (and one scatter over a host
        pool) instead of one per point.

        The batch is processed in proposal order in two passes. The
        *decision* pass classifies every point exactly as the serial
        loop would — consulting the local LRU (simulated forward so
        in-batch duplicates and evictions resolve identically) and the
        shared tier — and collects the misses. After one batched
        dispatch of the misses, the *replay* pass applies the serial
        per-point bookkeeping in order: counters, LRU insertion and
        eviction, shared-cache population, reward computation, episode
        accounting, and dataset logging. A mid-batch episode end is
        auto-reset (what the serial driver does between steps); an
        episode end on the final point leaves ``_needs_reset`` set for
        the caller, exactly like :meth:`step`.
        """
        actions, keys = self._validate_batch(actions, "step_batch")
        if not actions:
            return []
        plan, miss_actions, shared_seen = self._plan_batch(actions, keys)

        # -- one batched dispatch for every miss
        miss_metrics: List[Dict[str, float]] = []
        if miss_actions:
            start = time.perf_counter()
            miss_metrics = self._dispatch_evaluate_batch(miss_actions)
            self.stats.total_sim_time += time.perf_counter() - start
            for metrics in miss_metrics:
                self._check_metrics(metrics)

        # -- replay pass: the serial per-point bookkeeping, in order
        return [
            self._replay_point(action, key, tag, ref, miss_metrics, shared_seen)
            for action, key, (tag, ref) in zip(actions, keys, plan)
        ]

    def step_batch_stream(
        self, actions: Sequence[Mapping[str, Any]]
    ) -> Iterator[StepResult]:
        """:meth:`step_batch` over a streaming dispatch — results flow
        back per work unit instead of behind a whole-batch barrier.

        Byte-identical to :meth:`step_batch` (which is byte-identical
        to the serial loop): the decision pass classifies every point
        the same way, and the replay pass applies the serial
        bookkeeping in **proposal order** — chunks may *arrive* in any
        order (a work-stolen straggler unit lands whenever its thief
        finishes), are buffered, and each point is replayed only once
        its metrics are in hand. Completed :class:`StepResult` tuples
        are yielded in proposal order as they become replayable.

        Returns a generator; validation and the decision pass run
        eagerly at call time. The caller must drain the generator — a
        partially consumed stream leaves the episode bookkeeping
        mid-batch (the dispatcher itself stops handing out work when
        the generator is closed). Backends without streaming support
        (including in-process evaluation) fall back to one whole-batch
        chunk, so this is always safe to call.
        """
        actions, keys = self._validate_batch(actions, "step_batch_stream")
        if not actions:
            return iter(())
        plan, miss_actions, shared_seen = self._plan_batch(actions, keys)
        return self._replay_stream(actions, keys, plan, miss_actions, shared_seen)

    def _replay_stream(
        self,
        actions: List[Mapping[str, Any]],
        keys: List[Optional[ActionKey]],
        plan: List[Tuple[str, Any]],
        miss_actions: List[Mapping[str, Any]],
        shared_seen: Dict[ActionKey, Dict[str, float]],
    ) -> Iterator[StepResult]:
        """Replay the batch in proposal order against a chunk stream,
        buffering out-of-order arrivals until the next needed miss
        index is filled."""
        miss_metrics: List[Optional[Dict[str, float]]] = [None] * len(miss_actions)
        chunks = (
            self._dispatch_evaluate_batch_stream(miss_actions)
            if miss_actions else iter(())
        )

        def fill(index: int) -> None:
            while miss_metrics[index] is None:
                start = time.perf_counter()
                try:
                    chunk_start, metrics_list = next(chunks)
                except StopIteration:
                    raise EnvironmentError_(
                        f"evaluation stream ended with design point "
                        f"{index} of {len(miss_actions)} unanswered"
                    ) from None
                self.stats.total_sim_time += time.perf_counter() - start
                for offset, metrics in enumerate(metrics_list):
                    self._check_metrics(metrics)
                    miss_metrics[chunk_start + offset] = metrics

        for action, key, (tag, ref) in zip(actions, keys, plan):
            if tag in ("miss", "shared-dup"):
                fill(ref)
            yield self._replay_point(
                action, key, tag, ref, miss_metrics, shared_seen
            )

    def _validate_batch(
        self, actions: Sequence[Mapping[str, Any]], caller: str
    ) -> Tuple[List[Mapping[str, Any]], List[Optional[ActionKey]]]:
        """Shared batched-step entry checks: reset state, per-point
        validation, and (when any cache tier is on) canonical keys."""
        if self._needs_reset:
            raise EnvironmentError_(f"call reset() before {caller}()")
        actions = list(actions)
        for action in actions:
            try:
                self.action_space.validate(action)
            except Exception as exc:
                raise InvalidActionError(str(exc)) from exc
        caching = self._eval_cache is not None or self._shared_cache is not None
        keys: List[Optional[ActionKey]] = [
            canonical_action_key(action) if caching else None
            for action in actions
        ]
        return actions, keys

    def _check_metrics(self, metrics: Mapping[str, float]) -> None:
        missing = [m for m in self.observation_metrics if m not in metrics]
        if missing:
            raise EnvironmentError_(
                f"cost model did not report metrics {missing}; "
                f"got {sorted(metrics)}"
            )

    def _plan_batch(
        self,
        actions: List[Mapping[str, Any]],
        keys: List[Optional[ActionKey]],
    ) -> Tuple[
        List[Tuple[str, Any]],
        List[Mapping[str, Any]],
        Dict[ActionKey, Dict[str, float]],
    ]:
        """Decision pass of a batched step: classify every point as the
        serial loop would.

        ``sim`` shadows the local LRU's key set (values irrelevant) so
        in-batch duplicates — and duplicates evicted again by a batch
        larger than the LRU — resolve exactly as they would serially.
        Returns ``(plan, miss_actions, shared_seen)``: per-point
        ``("local"|"shared"|"shared-dup"|"miss", ref)`` tags, the
        design points no cache tier could answer (in proposal order),
        and the shared-tier answers already fetched.
        """
        plan: List[Tuple[str, Any]] = []
        miss_actions: List[Mapping[str, Any]] = []
        sim: "Optional[OrderedDict[ActionKey, None]]" = (
            OrderedDict((k, None) for k in self._eval_cache)
            if self._eval_cache is not None
            else None
        )
        pending: Dict[ActionKey, int] = {}  # in-batch miss -> its index
        shared_seen: Dict[ActionKey, Dict[str, float]] = {}

        def sim_remember(key: ActionKey) -> None:
            if sim is None:
                return
            sim[key] = None
            sim.move_to_end(key)
            while len(sim) > self._eval_cache_maxsize:
                sim.popitem(last=False)

        for action, key in zip(actions, keys):
            if sim is not None and key in sim:
                sim.move_to_end(key)
                plan.append(("local", key))
                continue
            if key is not None and key in pending and self._shared_cache is not None:
                # An earlier in-batch miss already evaluated (and will
                # shared-put) this point; with the local LRU disabled or
                # having evicted it, the serial lookup finds it in the
                # shared tier.
                plan.append(("shared-dup", pending[key]))
                sim_remember(key)
                continue
            if key is not None and self._shared_cache is not None:
                found = shared_seen.get(key)
                if found is None:
                    found = self._shared_cache.get(key)
                if found is not None:
                    shared_seen[key] = found
                    plan.append(("shared", key))
                    sim_remember(key)
                    continue
            index = len(miss_actions)
            miss_actions.append(action)
            plan.append(("miss", index))
            if key is not None:
                pending[key] = index
                sim_remember(key)
        return plan, miss_actions, shared_seen

    def _replay_point(
        self,
        action: Mapping[str, Any],
        key: Optional[ActionKey],
        tag: str,
        ref: Any,
        miss_metrics: Sequence[Optional[Dict[str, float]]],
        shared_seen: Dict[ActionKey, Dict[str, float]],
    ) -> StepResult:
        """Replay pass for one classified point: the serial per-point
        bookkeeping — counters, LRU insertion/eviction, shared-cache
        population, reward, episode accounting, dataset logging — in
        exactly the order :meth:`step` applies it."""
        if self._needs_reset:
            # A mid-batch episode end: the serial driver resets
            # between steps, so the batch path does too.
            self.reset()
        if tag == "local":
            # By replay time the real LRU holds the key: it either
            # pre-dated the batch or was remembered by an earlier
            # miss/shared hit replayed above.
            cached = self._eval_cache[ref]
            self.stats.cache_hits += 1
            self._eval_cache.move_to_end(ref)
            metrics = dict(cached)
        elif tag == "shared":
            self.stats.shared_cache_hits += 1
            metrics = dict(shared_seen[ref])
            self._remember_local(ref, metrics)
        elif tag == "shared-dup":
            self.stats.shared_cache_hits += 1
            metrics = {k: float(v) for k, v in miss_metrics[ref].items()}
            self._remember_local(key, metrics)
        else:  # miss
            metrics = miss_metrics[ref]
            if key is not None:
                self.stats.cache_misses += 1
                clean = {k: float(v) for k, v in metrics.items()}
                self._remember_local(key, clean)
                if self._shared_cache is not None:
                    self._shared_cache.put(key, clean)

        reward = self.reward_spec.compute(metrics)
        observation = np.array(
            [metrics[m] for m in self.observation_metrics], dtype=np.float64
        )

        self._steps_in_episode += 1
        self.stats.total_steps += 1

        target_met = self.reward_spec.meets_target(metrics)
        terminated = bool(self.terminate_on_target and target_met)
        truncated = self._steps_in_episode >= self.episode_length
        if terminated or truncated:
            self._needs_reset = True

        info: Dict[str, Any] = {
            "metrics": dict(metrics),
            "target_met": target_met,
            "step": self._steps_in_episode,
        }

        if self.dataset is not None:
            self.dataset.append(
                Transition(
                    action=dict(action),
                    metrics={k: float(v) for k, v in metrics.items()},
                    reward=float(reward),
                    source=self._source_tag,
                    step=self.stats.total_steps,
                )
            )

        return (observation, float(reward), terminated, truncated, info)

    # -- convenience ------------------------------------------------------------------

    def random_action(self) -> Dict[str, Any]:
        """Sample a uniform random action from the env's own generator."""
        return self.action_space.sample(self._rng)

    def render(self) -> str:
        """Human-readable one-line status (gym compatibility)."""
        return f"{self.env_id}: {self.stats!r}"

    def close(self) -> None:
        """Release resources (no-op for the built-in environments)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(env_id={self.env_id!r}, "
            f"dim={self.action_space.dimension}, "
            f"|A|={self.action_space.cardinality:.3g})"
        )
