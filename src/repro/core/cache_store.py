"""Cross-process shared evaluation cache (file-backed, lock-free).

The in-memory LRU inside :class:`~repro.core.env.ArchGymEnv` dies with
its environment, so concurrent trials of one sweep re-simulate each
other's design points — the exact waste the paper's "evaluation is the
bottleneck" argument targets. :class:`SharedCacheStore` is a second
cache tier that outlives any single environment or process: a
directory of append-only JSONL shard files keyed on
:func:`~repro.core.env.canonical_action_key`.

Design constraints, in order:

- **Lock-free.** Writers append one complete JSON line per entry via a
  single ``os.write`` on an ``O_APPEND`` descriptor (atomic on POSIX
  for our line sizes), so concurrent writers never interleave bytes.
  Readers tail the shard file from their last-seen offset and simply
  ignore a trailing line that has no newline yet.
- **Sharded.** Entries spread over ``n_shards`` files by key hash, so
  concurrent writers mostly touch different files and a refresh only
  re-reads the shard a key lives in.
- **Deterministic.** The store memoizes a *deterministic* cost model,
  so duplicate entries for one key (two processes racing on the same
  miss) are harmless — every copy carries the same metrics, and
  floats survive the JSON round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import CacheStoreError

__all__ = ["SharedCacheStore", "encode_key"]

ActionKey = Tuple[Tuple[str, Any], ...]

_FORMAT = "archgym-cache-v1"


def encode_key(key: ActionKey) -> str:
    """Stable string identity for a canonical action key.

    The key is already canonical (sorted parameter names, frozen
    values), so its JSON encoding — tuples rendered as lists — is a
    stable cross-process identity.
    """
    return json.dumps(key, separators=(",", ":"))


class SharedCacheStore:
    """A directory-backed ``canonical_action_key -> metrics`` map.

    Parameters
    ----------
    directory:
        Where the shard files live; created (with parents) on first
        use. Any number of processes may point a store at the same
        directory concurrently.
    n_shards:
        How many append-only files entries are spread over by key
        hash. Must match across all processes sharing the directory
        (it is recorded in, and verified against, ``cache-meta.json``).
    """

    def __init__(self, directory: str | Path, n_shards: int = 16) -> None:
        if n_shards < 1:
            raise CacheStoreError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.n_shards = n_shards
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta()
        # Per-shard in-process view: decoded entries + how far into the
        # file they reach. A miss re-tails the file before giving up.
        self._entries: List[Dict[str, Dict[str, float]]] = [
            {} for _ in range(n_shards)
        ]
        self._offsets: List[int] = [0] * n_shards

    # -- public API ---------------------------------------------------------------

    def get(self, key: ActionKey) -> Optional[Dict[str, float]]:
        """Metrics for ``key``, or ``None``. A local miss re-reads the
        shard's new bytes first, so entries written by other processes
        become visible without any coordination."""
        key_str = encode_key(key)
        shard = self._shard_index(key_str)
        found = self._entries[shard].get(key_str)
        if found is None:
            self._refresh(shard)
            found = self._entries[shard].get(key_str)
        return dict(found) if found is not None else None

    def put(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Append one entry (idempotent: a key this process already
        holds is not re-written)."""
        key_str = encode_key(key)
        shard = self._shard_index(key_str)
        if key_str in self._entries[shard]:
            return
        clean = {k: float(v) for k, v in metrics.items()}
        line = (
            json.dumps({"k": key_str, "m": clean}, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        fd = os.open(
            self._shard_path(shard), os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line)  # single write on O_APPEND: atomic append
        finally:
            os.close(fd)
        self._entries[shard][key_str] = clean

    def __len__(self) -> int:
        """Distinct keys currently visible (refreshes every shard)."""
        for shard in range(self.n_shards):
            self._refresh(shard)
        return sum(len(e) for e in self._entries)

    def __repr__(self) -> str:
        return (
            f"SharedCacheStore(directory={str(self.directory)!r}, "
            f"n_shards={self.n_shards})"
        )

    # -- internals ----------------------------------------------------------------

    def _shard_index(self, key_str: str) -> int:
        digest = hashlib.sha256(key_str.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.n_shards

    def _shard_path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard:03d}.jsonl"

    def _check_meta(self) -> None:
        meta_path = self.directory / "cache-meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != _FORMAT:
                raise CacheStoreError(
                    f"{self.directory} is not an ArchGym shared cache "
                    f"(format {meta.get('format')!r})"
                )
            if meta.get("n_shards") != self.n_shards:
                raise CacheStoreError(
                    f"shared cache at {self.directory} uses "
                    f"n_shards={meta.get('n_shards')}, not {self.n_shards}"
                )
            return
        tmp = meta_path.with_name(f"{meta_path.name}.tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps({"format": _FORMAT, "n_shards": self.n_shards})
        )
        os.replace(tmp, meta_path)  # racing processes write identical bytes

    def _refresh(self, shard: int) -> None:
        """Fold any bytes appended since the last read into the local
        view. Only complete lines (ending in a newline) are consumed —
        a concurrent writer's in-flight line is picked up next time."""
        path = self._shard_path(shard)
        try:
            with path.open("rb") as f:
                f.seek(self._offsets[shard])
                chunk = f.read()
        except FileNotFoundError:
            return
        if not chunk:
            return
        complete = chunk.rfind(b"\n") + 1
        if complete == 0:
            return
        for line in chunk[:complete].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                self._entries[shard][record["k"]] = {
                    k: float(v) for k, v in record["m"].items()
                }
            except (ValueError, KeyError, TypeError):
                # A torn/corrupt line loses one memo entry, never a result.
                continue
        self._offsets[shard] += complete
