"""Cross-process shared evaluation caches (file- and server-backed).

The in-memory LRU inside :class:`~repro.core.env.ArchGymEnv` dies with
its environment, so concurrent trials of one sweep re-simulate each
other's design points — the exact waste the paper's "evaluation is the
bottleneck" argument targets. This module provides second cache tiers
that outlive any single environment or process, all sharing one
``get``/``put``/``__len__`` contract keyed on
:func:`~repro.core.env.canonical_action_key`:

- :class:`SharedCacheStore` — a directory of append-only JSONL shard
  files, for trials sharing a filesystem.
- :class:`ServerCacheStore` — the ``/cache`` endpoints of a
  :class:`repro.service.EvaluationService`, for sweeps spread over
  machines that share only a network.

``SharedCacheStore`` design constraints, in order:

- **Lock-free.** Writers append one complete JSON line per entry via a
  single ``os.write`` on an ``O_APPEND`` descriptor (atomic on POSIX
  for our line sizes), so concurrent writers never interleave bytes.
  Readers tail the shard file from their last-seen offset and simply
  ignore a trailing line that has no newline yet.
- **Sharded.** Entries spread over ``n_shards`` files by key hash, so
  concurrent writers mostly touch different files and a refresh only
  re-reads the shard a key lives in.
- **Deterministic.** The store memoizes a *deterministic* cost model,
  so duplicate entries for one key (two processes racing on the same
  miss) are harmless — every copy carries the same metrics, and
  floats survive the JSON round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CacheStoreError, ServiceTransportError

__all__ = ["SharedCacheStore", "ServerCacheStore", "encode_key"]

ActionKey = Tuple[Tuple[str, Any], ...]

_FORMAT = "archgym-cache-v1"


def encode_key(key: ActionKey) -> str:
    """Stable string identity for a canonical action key.

    The key is already canonical (sorted parameter names, frozen
    values), so its JSON encoding — tuples rendered as lists — is a
    stable cross-process identity.
    """
    return json.dumps(key, separators=(",", ":"))


class SharedCacheStore:
    """A directory-backed ``canonical_action_key -> metrics`` map.

    Parameters
    ----------
    directory:
        Where the shard files live; created (with parents) on first
        use. Any number of processes may point a store at the same
        directory concurrently.
    n_shards:
        How many append-only files entries are spread over by key
        hash. Must match across all processes sharing the directory
        (it is recorded in, and verified against, ``cache-meta.json``).
    durable:
        ``fsync`` every appended entry before :meth:`put` returns. Off
        by default: the store is a *memo*, so the durability contract
        of ``O_APPEND`` alone — an entry written before a crash may be
        lost, but readers never see a half-entry (torn trailing lines
        are skipped) — costs at most a re-simulation, never a wrong
        result. Turn it on when the cache itself is the artifact being
        preserved (e.g. a long-lived server-side store).
    """

    def __init__(
        self, directory: str | Path, n_shards: int = 16, durable: bool = False
    ) -> None:
        if n_shards < 1:
            raise CacheStoreError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.n_shards = n_shards
        self.durable = durable
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta()
        # Per-shard in-process view: decoded entries + how far into the
        # file they reach. A miss re-tails the file before giving up.
        self._entries: List[Dict[str, Dict[str, float]]] = [
            {} for _ in range(n_shards)
        ]
        self._offsets: List[int] = [0] * n_shards

    # -- public API ---------------------------------------------------------------

    def get(self, key: ActionKey) -> Optional[Dict[str, float]]:
        """Metrics for ``key``, or ``None``. A local miss re-reads the
        shard's new bytes first, so entries written by other processes
        become visible without any coordination. A missing shard file
        — or a whole shard directory deleted out from under the store —
        is an empty cache, not an error."""
        return self.get_encoded(encode_key(key))

    def put(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Append one entry.

        Idempotent: a key this process already holds *with the same
        metrics* is not re-written. A different value for a held key is
        appended — readers fold shard lines in file order, so the store
        is last-writer-wins for fresh handles (a handle that already
        memoized the key keeps serving its copy: the store memoizes
        deterministic cost models, where every copy agrees).

        Durability: the append is a single ``os.write`` on an
        ``O_APPEND`` descriptor — atomic against concurrent writers —
        but is **not** ``fsync``'d unless the store was built with
        ``durable=True``; see the class docstring for why losing a
        memo entry to a crash is acceptable by default.
        """
        self.put_encoded(encode_key(key), metrics)

    def get_encoded(self, key_str: str) -> Optional[Dict[str, float]]:
        """:meth:`get` by pre-encoded key — the form wire protocols
        (and the evaluation service's ``/cache`` endpoints) carry."""
        shard = self._shard_index(key_str)
        found = self._entries[shard].get(key_str)
        if found is None:
            self._refresh(shard)
            found = self._entries[shard].get(key_str)
        return dict(found) if found is not None else None

    def put_encoded(self, key_str: str, metrics: Dict[str, float]) -> None:
        """:meth:`put` by pre-encoded key."""
        shard = self._shard_index(key_str)
        clean = {k: float(v) for k, v in metrics.items()}
        if self._entries[shard].get(key_str) == clean:
            return
        line = (
            json.dumps({"k": key_str, "m": clean}, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        self._append(shard, line)
        self._entries[shard][key_str] = clean

    def __len__(self) -> int:
        """Distinct keys currently visible (refreshes every shard)."""
        for shard in range(self.n_shards):
            self._refresh(shard)
        return sum(len(e) for e in self._entries)

    def __repr__(self) -> str:
        return (
            f"SharedCacheStore(directory={str(self.directory)!r}, "
            f"n_shards={self.n_shards})"
        )

    # -- internals ----------------------------------------------------------------

    def _append(self, shard: int, line: bytes) -> None:
        """One atomic ``O_APPEND`` write; recreates a shard directory
        deleted out from under the store (e.g. a cleanup racing a
        long-lived server) instead of failing the sweep."""
        path = self._shard_path(shard)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        except (FileNotFoundError, NotADirectoryError):
            self.directory.mkdir(parents=True, exist_ok=True)
            self._check_meta()
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)  # single write on O_APPEND: atomic append
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    def _shard_index(self, key_str: str) -> int:
        digest = hashlib.sha256(key_str.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.n_shards

    def _shard_path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard:03d}.jsonl"

    def _check_meta(self) -> None:
        meta_path = self.directory / "cache-meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != _FORMAT:
                raise CacheStoreError(
                    f"{self.directory} is not an ArchGym shared cache "
                    f"(format {meta.get('format')!r})"
                )
            if meta.get("n_shards") != self.n_shards:
                raise CacheStoreError(
                    f"shared cache at {self.directory} uses "
                    f"n_shards={meta.get('n_shards')}, not {self.n_shards}"
                )
            return
        # Unique per process AND thread: concurrent handles racing this
        # write must each complete their own tmp file — sharing one tmp
        # path could rename a half-written meta into place. The renames
        # themselves may race freely; every copy carries identical bytes.
        tmp = meta_path.with_name(
            f"{meta_path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(
            json.dumps({"format": _FORMAT, "n_shards": self.n_shards})
        )
        os.replace(tmp, meta_path)

    def _refresh(self, shard: int) -> None:
        """Fold any bytes appended since the last read into the local
        view. Only complete lines (ending in a newline) are consumed —
        a concurrent writer's in-flight line is picked up next time.
        A shard file (or directory) that does not exist contributes
        nothing — never an exception."""
        path = self._shard_path(shard)
        try:
            with path.open("rb") as f:
                f.seek(self._offsets[shard])
                chunk = f.read()
        except (FileNotFoundError, NotADirectoryError):
            return
        if not chunk:
            return
        complete = chunk.rfind(b"\n") + 1
        if complete == 0:
            return
        for line in chunk[:complete].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                self._entries[shard][record["k"]] = {
                    k: float(v) for k, v in record["m"].items()
                }
            except (ValueError, KeyError, TypeError):
                # A torn/corrupt line loses one memo entry, never a result.
                continue
        self._offsets[shard] += complete


class ServerCacheStore:
    """The same ``get``/``put``/``__len__`` contract as
    :class:`SharedCacheStore`, backed by an evaluation service's
    ``/cache`` endpoints instead of a shared filesystem.

    Point any number of sweeps — on any number of machines — at one
    service URL and they reuse each other's design points. Entries this
    process has already seen are memoized locally (the cost model is
    deterministic, so a cached copy can never go stale), which keeps
    HTTP chatter to one round trip per *new* design point.

    Parameters
    ----------
    service:
        Base URL of a running service, or an existing
        :class:`repro.service.ServiceClient` to reuse its
        retry/timeout policy.
    fallbacks:
        Base URLs of further pool hosts to re-bind to — in order —
        when the current cache host's *transport* dies (connection
        refused/reset, timeout, torn body, each after the client's own
        retry policy). The failed operation is transparently re-run on
        the next host, so a sweep keeps its shared tier (the new
        host's ``/cache`` map, plus this process's local memo) instead
        of failing. Deterministic server errors are not failover
        events and propagate immediately.
    client_kwargs:
        ``timeout_s`` / ``retries`` / ``backoff_s`` when ``service`` is
        a URL. Fallback clients inherit the active client's policy.

    Errors surface as :class:`~repro.core.errors.ServiceError` — once
    the fallback chain is exhausted, an unreachable cache fails the
    sweep loudly rather than silently degrading into re-simulation.
    """

    def __init__(
        self, service: Any, fallbacks: Sequence[str] = (), **client_kwargs: Any
    ) -> None:
        # Imported lazily: core must stay importable without the
        # service package participating in any cycle.
        from repro.service.client import ServiceClient

        if isinstance(service, ServiceClient):
            if client_kwargs:
                raise CacheStoreError(
                    "client_kwargs cannot be combined with an existing "
                    "ServiceClient — its policy would silently win; set "
                    f"the policy on the client instead ({sorted(client_kwargs)})"
                )
            self._client = service
        else:
            self._client = ServiceClient(str(service), **client_kwargs)
        self._fallbacks: List[str] = [
            url for url in fallbacks
            if url.rstrip("/") != self._client.base_url
        ]
        self._local: Dict[str, Dict[str, float]] = {}

    def _advance(self) -> bool:
        """Re-bind to the next fallback host; False when none remain."""
        from repro.service.client import ServiceClient

        if not self._fallbacks:
            return False
        old = self._client
        self._client = ServiceClient(
            self._fallbacks.pop(0),
            timeout_s=old.timeout_s,
            retries=old.retries,
            backoff_s=old.backoff_s,
            backoff_cap_s=old.backoff_cap_s,
        )
        return True

    def _call(self, op: str, *args: Any) -> Any:
        """One cache operation, failing over on transport death."""
        while True:
            try:
                return getattr(self._client, op)(*args)
            except ServiceTransportError:
                if not self._advance():
                    raise

    def get(self, key: ActionKey) -> Optional[Dict[str, float]]:
        """Metrics for ``key``, or ``None`` (asks the server on a local
        miss, so entries written by other machines become visible)."""
        key_str = encode_key(key)
        found = self._local.get(key_str)
        if found is None:
            found = self._call("cache_get", key_str)
            if found is not None:
                self._local[key_str] = found
        return dict(found) if found is not None else None

    def put(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Store one entry (idempotent: a key this process already
        holds *with the same metrics* is not re-sent; a changed value
        is — the server map is last-writer-wins)."""
        key_str = encode_key(key)
        clean = {k: float(v) for k, v in metrics.items()}
        if self._local.get(key_str) == clean:
            return
        self._call("cache_put", key_str, clean)
        self._local[key_str] = clean

    def __len__(self) -> int:
        """Distinct keys currently held by the server."""
        return self._call("cache_size")

    def __repr__(self) -> str:
        return f"ServerCacheStore(url={self._client.base_url!r})"
