"""Cross-process shared evaluation caches (file- and server-backed).

The in-memory LRU inside :class:`~repro.core.env.ArchGymEnv` dies with
its environment, so concurrent trials of one sweep re-simulate each
other's design points — the exact waste the paper's "evaluation is the
bottleneck" argument targets. This module provides second cache tiers
that outlive any single environment or process, all sharing one
``get``/``put``/``__len__`` contract keyed on
:func:`~repro.core.env.canonical_action_key`:

- :class:`SharedCacheStore` — a directory of append-only JSONL shard
  files, for trials sharing a filesystem.
- :class:`ServerCacheStore` — the ``/cache`` endpoints of a
  :class:`repro.service.EvaluationService`, for sweeps spread over
  machines that share only a network.

``SharedCacheStore`` design constraints, in order:

- **Lock-free.** Writers append one complete JSON line per entry via a
  single ``os.write`` on an ``O_APPEND`` descriptor (atomic on POSIX
  for our line sizes), so concurrent writers never interleave bytes.
  Readers tail the shard file from their last-seen offset and simply
  ignore a trailing line that has no newline yet.
- **Sharded.** Entries spread over ``n_shards`` files by key hash, so
  concurrent writers mostly touch different files and a refresh only
  re-reads the shard a key lives in.
- **Deterministic.** The store memoizes a *deterministic* cost model,
  so duplicate entries for one key (two processes racing on the same
  miss) are harmless — every copy carries the same metrics, and
  floats survive the JSON round-trip exactly.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import CacheStoreError, ServiceTransportError

__all__ = ["SharedCacheStore", "ServerCacheStore", "encode_key"]

ActionKey = Tuple[Tuple[str, Any], ...]

_FORMAT = "archgym-cache-v1"


def encode_key(key: ActionKey) -> str:
    """Stable string identity for a canonical action key.

    The key is already canonical (sorted parameter names, frozen
    values), so its JSON encoding — tuples rendered as lists — is a
    stable cross-process identity.
    """
    return json.dumps(key, separators=(",", ":"))


def _finite_metrics(metrics: Dict[str, Any]) -> Dict[str, float]:
    """Normalize metrics to ``{str: float}`` and reject non-finite values.

    ``json.dumps`` would happily emit NaN/±Infinity as the non-standard
    ``NaN``/``Infinity`` tokens — bytes strict JSON parsers reject and
    that poison any proxy model trained from the cache corpus — so a
    non-finite metric is a caller bug surfaced at put time, not an
    entry to store.
    """
    clean = {str(k): float(v) for k, v in metrics.items()}
    for name, value in clean.items():
        if not math.isfinite(value):
            raise CacheStoreError(
                f"metric {name!r} is non-finite ({value!r}); cache entries "
                "must hold finite floats"
            )
    return clean


class SharedCacheStore:
    """A directory-backed ``canonical_action_key -> metrics`` map.

    Parameters
    ----------
    directory:
        Where the shard files live; created (with parents) on first
        use. Any number of processes may point a store at the same
        directory concurrently.
    n_shards:
        How many append-only files entries are spread over by key
        hash. Must match across all processes sharing the directory
        (it is recorded in, and verified against, ``cache-meta.json``).
    durable:
        ``fsync`` every appended entry before :meth:`put` returns. Off
        by default: the store is a *memo*, so the durability contract
        of ``O_APPEND`` alone — an entry written before a crash may be
        lost, but readers never see a half-entry (torn trailing lines
        are skipped) — costs at most a re-simulation, never a wrong
        result. Turn it on when the cache itself is the artifact being
        preserved (e.g. a long-lived server-side store).
    """

    def __init__(
        self, directory: str | Path, n_shards: int = 16, durable: bool = False
    ) -> None:
        if n_shards < 1:
            raise CacheStoreError(f"n_shards must be >= 1, got {n_shards}")
        self.directory = Path(directory)
        self.n_shards = n_shards
        self.durable = durable
        self.directory.mkdir(parents=True, exist_ok=True)
        self._check_meta()
        # Per-shard in-process view: decoded entries + how far into the
        # file they reach. A miss re-tails the file before giving up.
        self._entries: List[Dict[str, Dict[str, float]]] = [
            {} for _ in range(n_shards)
        ]
        self._offsets: List[int] = [0] * n_shards

    # -- public API ---------------------------------------------------------------

    def get(self, key: ActionKey) -> Optional[Dict[str, float]]:
        """Metrics for ``key``, or ``None``. A local miss re-reads the
        shard's new bytes first, so entries written by other processes
        become visible without any coordination. A missing shard file
        — or a whole shard directory deleted out from under the store —
        is an empty cache, not an error."""
        return self.get_encoded(encode_key(key))

    def put(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Append one entry.

        Idempotent: a key this process already holds *with the same
        metrics* is not re-written. A different value for a held key is
        appended — readers fold shard lines in file order, so the store
        is last-writer-wins for fresh handles (a handle that already
        memoized the key keeps serving its copy: the store memoizes
        deterministic cost models, where every copy agrees).

        Durability: the append is a single ``os.write`` on an
        ``O_APPEND`` descriptor — atomic against concurrent writers —
        but is **not** ``fsync``'d unless the store was built with
        ``durable=True``; see the class docstring for why losing a
        memo entry to a crash is acceptable by default.
        """
        self.put_encoded(encode_key(key), metrics)

    def get_encoded(self, key_str: str) -> Optional[Dict[str, float]]:
        """:meth:`get` by pre-encoded key — the form wire protocols
        (and the evaluation service's ``/cache`` endpoints) carry."""
        shard = self._shard_index(key_str)
        found = self._entries[shard].get(key_str)
        if found is None:
            self._refresh(shard)
            found = self._entries[shard].get(key_str)
        return dict(found) if found is not None else None

    def put_encoded(self, key_str: str, metrics: Dict[str, float]) -> None:
        """:meth:`put` by pre-encoded key."""
        shard = self._shard_index(key_str)
        clean = _finite_metrics(metrics)
        if self._entries[shard].get(key_str) == clean:
            return
        line = (
            json.dumps({"k": key_str, "m": clean}, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        self._append(shard, line)
        self._entries[shard][key_str] = clean

    def __len__(self) -> int:
        """Distinct keys currently visible (refreshes every shard)."""
        for shard in range(self.n_shards):
            self._refresh(shard)
        return sum(len(e) for e in self._entries)

    def keys_encoded(self) -> List[str]:
        """Sorted encoded keys currently visible (refreshes every
        shard) — the deterministic enumeration the evaluation
        service's paginated ``GET /cache`` listing pages through."""
        for shard in range(self.n_shards):
            self._refresh(shard)
        keys: List[str] = []
        for entries in self._entries:
            keys.extend(entries)
        keys.sort()
        return keys

    def list_encoded(
        self, offset: int = 0, limit: int = 500
    ) -> Tuple[List[Tuple[str, Dict[str, float]]], int]:
        """One page of the store in sorted-key order:
        ``([(key_str, metrics), ...], total)`` — the same paging
        contract :meth:`ServerCacheStore.list_encoded` serves, so a
        corpus harvester (e.g. the online proxy) can walk either tier
        identically."""
        keys = self.keys_encoded()
        page: List[Tuple[str, Dict[str, float]]] = []
        for key_str in keys[offset:offset + limit]:
            found = self.get_encoded(key_str)
            if found is not None:
                page.append((key_str, found))
        return page, len(keys)

    def __repr__(self) -> str:
        return (
            f"SharedCacheStore(directory={str(self.directory)!r}, "
            f"n_shards={self.n_shards})"
        )

    # -- internals ----------------------------------------------------------------

    def _append(self, shard: int, line: bytes) -> None:
        """One atomic ``O_APPEND`` write; recreates a shard directory
        deleted out from under the store (e.g. a cleanup racing a
        long-lived server) instead of failing the sweep."""
        path = self._shard_path(shard)
        try:
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        except (FileNotFoundError, NotADirectoryError):
            self.directory.mkdir(parents=True, exist_ok=True)
            self._check_meta()
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line)  # single write on O_APPEND: atomic append
            if self.durable:
                os.fsync(fd)
        finally:
            os.close(fd)

    def _shard_index(self, key_str: str) -> int:
        digest = hashlib.sha256(key_str.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.n_shards

    def _shard_path(self, shard: int) -> Path:
        return self.directory / f"shard-{shard:03d}.jsonl"

    def _check_meta(self) -> None:
        meta_path = self.directory / "cache-meta.json"
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != _FORMAT:
                raise CacheStoreError(
                    f"{self.directory} is not an ArchGym shared cache "
                    f"(format {meta.get('format')!r})"
                )
            if meta.get("n_shards") != self.n_shards:
                raise CacheStoreError(
                    f"shared cache at {self.directory} uses "
                    f"n_shards={meta.get('n_shards')}, not {self.n_shards}"
                )
            return
        # Unique per process AND thread: concurrent handles racing this
        # write must each complete their own tmp file — sharing one tmp
        # path could rename a half-written meta into place. The renames
        # themselves may race freely; every copy carries identical bytes.
        tmp = meta_path.with_name(
            f"{meta_path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        tmp.write_text(
            json.dumps({"format": _FORMAT, "n_shards": self.n_shards})
        )
        os.replace(tmp, meta_path)

    def _refresh(self, shard: int) -> None:
        """Fold any bytes appended since the last read into the local
        view. Only complete lines (ending in a newline) are consumed —
        a concurrent writer's in-flight line is picked up next time.
        A shard file (or directory) that does not exist contributes
        nothing — never an exception."""
        path = self._shard_path(shard)
        try:
            with path.open("rb") as f:
                f.seek(self._offsets[shard])
                chunk = f.read()
        except (FileNotFoundError, NotADirectoryError):
            return
        if not chunk:
            return
        complete = chunk.rfind(b"\n") + 1
        if complete == 0:
            return
        for line in chunk[:complete].splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                folded = {k: float(v) for k, v in record["m"].items()}
                if not all(math.isfinite(v) for v in folded.values()):
                    # A pre-guard shard may carry NaN/Infinity tokens
                    # (Python's json parses them); skip rather than
                    # serve a value strict peers could never round-trip.
                    continue
                self._entries[shard][record["k"]] = folded
            except (ValueError, KeyError, TypeError):
                # A torn/corrupt line loses one memo entry, never a result.
                continue
        self._offsets[shard] += complete


class _CacheHost:
    """One replica host in a :class:`ServerCacheStore` chain."""

    __slots__ = ("client", "alive", "last_error")

    def __init__(self, client: Any) -> None:
        self.client = client
        self.alive = True
        self.last_error: Optional[str] = None


class ServerCacheStore:
    """The same ``get``/``put``/``__len__`` contract as
    :class:`SharedCacheStore`, backed by the ``/cache`` endpoints of
    one or more evaluation services instead of a shared filesystem.

    Point any number of sweeps — on any number of machines — at one
    service URL and they reuse each other's design points. Entries this
    process has already seen are memoized locally (the cost model is
    deterministic, so a cached copy can never go stale), which keeps
    HTTP chatter to one round trip per *new* design point.

    Parameters
    ----------
    service:
        Base URL of a running service (the chain's primary), or an
        existing :class:`repro.service.ServiceClient` to reuse its
        retry/timeout policy.
    fallbacks:
        Base URLs of further pool hosts forming the replica chain
        behind the primary. URLs are normalized through
        ``ServiceClient.base_url`` and deduplicated (against the
        primary and each other) preserving order, so a trailing-slash
        variant or a repeated URL never becomes a second probe of the
        same dead host.
    replicas:
        Write-through replication factor: every ``put`` fans out to
        the first ``replicas`` *living* hosts of the chain, so the
        death of any ``replicas - 1`` hosts loses no entries — reads
        fail over to a surviving replica instead of re-simulating.
        ``None`` (the default) means ``min(2, chain length)``; larger
        values are clamped to the chain length. The entries are a
        deterministic memo (last-writer-wins, every copy identical),
        so the factor is purely a durability knob — it can never
        change results.
    client_kwargs:
        ``timeout_s`` / ``retries`` / ``backoff_s`` when ``service`` is
        a URL. Fallback clients inherit the primary client's policy.

    A host whose *transport* dies (connection refused/reset, timeout,
    torn body, each after the client's own retry policy) is skipped for
    the rest of this store's life; reads fall through to the next
    living replica and writes keep fanning out to the survivors.
    Deterministic server errors are not failover events and propagate
    immediately. When the whole chain looks dead, every host gets one
    optimistic second chance per operation (a restarted server
    rejoins); only if that also fails does the operation raise
    :class:`~repro.core.errors.ServiceTransportError` — an unreachable
    cache fails the sweep loudly rather than silently degrading into
    re-simulation.
    """

    def __init__(
        self,
        service: Any,
        fallbacks: Sequence[str] = (),
        replicas: Optional[int] = None,
        **client_kwargs: Any,
    ) -> None:
        # Imported lazily: core must stay importable without the
        # service package participating in any cycle.
        from repro.service.client import ServiceClient

        if isinstance(service, ServiceClient):
            if client_kwargs:
                raise CacheStoreError(
                    "client_kwargs cannot be combined with an existing "
                    "ServiceClient — its policy would silently win; set "
                    f"the policy on the client instead ({sorted(client_kwargs)})"
                )
            primary = service
        else:
            primary = ServiceClient(str(service), **client_kwargs)
        # The replica chain: primary first, then the deduplicated
        # fallbacks. Clients are built eagerly — construction opens no
        # sockets and gives every URL its canonical base_url identity.
        self._hosts: List[_CacheHost] = [_CacheHost(primary)]
        seen = {primary.base_url}
        for url in fallbacks:
            client = ServiceClient(
                str(url),
                timeout_s=primary.timeout_s,
                retries=primary.retries,
                backoff_s=primary.backoff_s,
                backoff_cap_s=primary.backoff_cap_s,
            )
            if client.base_url in seen:
                continue
            seen.add(client.base_url)
            self._hosts.append(_CacheHost(client))
        if replicas is None:
            replicas = min(2, len(self._hosts))
        if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
            raise CacheStoreError(
                f"replicas must be an integer >= 1, got {replicas!r}"
            )
        self._replicas = min(replicas, len(self._hosts))
        self._local: Dict[str, Dict[str, float]] = {}

    # -- introspection ------------------------------------------------------------

    @property
    def replica_urls(self) -> List[str]:
        """The normalized, deduplicated host chain (primary first)."""
        return [h.client.base_url for h in self._hosts]

    @property
    def replicas(self) -> int:
        """Effective write-through replication factor."""
        return self._replicas

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _clean(metrics: Dict[str, Any]) -> Dict[str, float]:
        """The one metrics normalizer both :meth:`get` and :meth:`put`
        memoize through, so a ``put`` of an equal-but-int-valued dict
        short-circuits against a previously fetched entry. Non-finite
        values are rejected before they reach a wire body."""
        return _finite_metrics(metrics)

    def _quarantine(self, host: _CacheHost, exc: BaseException) -> None:
        host.alive = False
        host.last_error = str(exc)

    def _revive_all(self) -> bool:
        """Optimistically un-quarantine every dead host — the one
        second chance per operation when the whole chain looks dead
        (a restarted server rejoins). False if nothing was dead."""
        flipped = False
        for host in self._hosts:
            if not host.alive:
                host.alive = True
                flipped = True
        return flipped

    def _inventory(self) -> str:
        return "; ".join(
            f"{h.client.base_url}: {h.last_error or 'ok'}" for h in self._hosts
        )

    def _call(self, op: str, *args: Any) -> Any:
        """Run one read operation on the first living replica, falling
        through the chain on transport death."""
        revived = False
        while True:
            host = next((h for h in self._hosts if h.alive), None)
            if host is None:
                if not revived and self._revive_all():
                    revived = True
                    continue
                raise ServiceTransportError(
                    f"shared-cache {op} failed on every replica host: "
                    f"{self._inventory()}"
                )
            try:
                return getattr(host.client, op)(*args)
            except ServiceTransportError as exc:
                self._quarantine(host, exc)

    def _try_put(self, key_str: str, clean: Dict[str, float]) -> int:
        """Write-through to the first ``replicas`` living hosts;
        returns how many copies landed (dead hosts are skipped and the
        fan-out continues down the chain to keep the count)."""
        written = 0
        for host in self._hosts:
            if written >= self._replicas:
                break
            if not host.alive:
                continue
            try:
                host.client.cache_put(key_str, clean)
                written += 1
            except ServiceTransportError as exc:
                self._quarantine(host, exc)
        return written

    # -- public API ---------------------------------------------------------------

    def get(self, key: ActionKey) -> Optional[Dict[str, float]]:
        """Metrics for ``key``, or ``None`` (asks the chain on a local
        miss, so entries written by other machines become visible). A
        replica whose transport dies mid-read is skipped and the next
        one answers — its entries were replicated, not abandoned."""
        key_str = encode_key(key)
        found = self._local.get(key_str)
        if found is None:
            found = self._call("cache_get", key_str)
            if found is not None:
                found = self._clean(found)
                self._local[key_str] = found
        return dict(found) if found is not None else None

    def put(self, key: ActionKey, metrics: Dict[str, float]) -> None:
        """Store one entry on ``replicas`` hosts (idempotent: a key
        this process already holds *with the same metrics* is not
        re-sent; a changed value is — the server maps are
        last-writer-wins). Succeeds as long as at least one copy
        lands; fewer than ``replicas`` survivors degrade durability,
        not correctness."""
        key_str = encode_key(key)
        clean = self._clean(metrics)
        if self._local.get(key_str) == clean:
            return
        written = self._try_put(key_str, clean)
        if not written and self._revive_all():
            written = self._try_put(key_str, clean)
        if not written:
            raise ServiceTransportError(
                f"shared-cache put failed on every replica host: "
                f"{self._inventory()}"
            )
        self._local[key_str] = clean

    def __len__(self) -> int:
        """Distinct keys held by the first living replica."""
        return self._call("cache_size")

    def list_encoded(
        self, offset: int = 0, limit: int = 500
    ) -> Tuple[List[Tuple[str, Dict[str, float]]], int]:
        """One page of the first living replica's ``GET /cache``
        listing: ``([(key_str, metrics), ...], total)``. Entries a
        pre-guard server may still hold with non-finite values are
        skipped rather than raised — a listing is a harvest, not a
        lookup."""
        entries, total = self._call("cache_list", offset, limit)
        page: List[Tuple[str, Dict[str, float]]] = []
        for key_str, metrics in entries:
            try:
                page.append((key_str, self._clean(metrics)))
            except (CacheStoreError, TypeError, ValueError):
                continue
        return page, int(total)

    def __repr__(self) -> str:
        return (
            f"ServerCacheStore(urls={self.replica_urls!r}, "
            f"replicas={self._replicas})"
        )
