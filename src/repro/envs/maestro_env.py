"""MaestroGym — DNN mapping DSE environment (paper Table 3, Fig. 3).

- simulator: the MAESTRO stand-in (`repro.maestro`)
- workload: a DNN (resnet18 / vgg16 / mobilenet / ...)
- action: the data-centric mapping genome (L1/L2 tiles, cluster,
  parallel dim, loop order) that GAMMA searches
- observation: ``<runtime, throughput, energy, area>``
- reward: ``r = 1 / runtime`` (Table 3) — higher is better, so minimizing
  model latency maximizes reward.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.core.env import ArchGymEnv
from repro.core.rewards import InverseReward
from repro.dnn import get_workload
from repro.maestro.mapping import Mapping as MaestroMapping
from repro.maestro.mapping import mapping_space
from repro.maestro.model import MaestroAccelerator, MaestroModel

__all__ = ["MaestroGymEnv"]


class MaestroGymEnv(ArchGymEnv):
    """Find the best mapping of a DNN onto a fixed spatial accelerator."""

    env_id = "MaestroGym-v0"

    def __init__(
        self,
        workload: str = "resnet18",
        runtime_target_ms: float = 0.0,
        accelerator: MaestroAccelerator = MaestroAccelerator(),
        episode_length: int = 1,
        terminate_on_target: bool = False,
        cache_size: int = 4096,
    ) -> None:
        super().__init__(
            action_space=mapping_space(),
            observation_metrics=["runtime", "throughput", "energy", "area"],
            reward_spec=InverseReward("runtime", target=runtime_target_ms),
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )
        self.workload = workload
        self.layers = get_workload(workload)
        self.model = MaestroModel(accelerator)
        self.enable_cache(cache_size)

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        return self.model.evaluate_network(
            MaestroMapping.from_action(action), self.layers
        )
