"""TimeloopGym — DNN accelerator DSE environment (paper Table 3, Fig. 3).

- simulator: the Timeloop stand-in (`repro.timeloop`)
- workload: a CNN (alexnet / mobilenet / resnet50 / ...)
- action: the accelerator parameters of Fig. 3 (PE array, scratchpads,
  global buffer, bandwidths, clock)
- observation: ``<latency, energy, area>``
- reward: target-relative (Table 3); default targets are set relative to
  the Eyeriss-like reference design so every workload gets a meaningful,
  reachable-but-nontrivial goal.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.core.env import ArchGymEnv
from repro.core.errors import EnvironmentError_
from repro.core.rewards import JointTargetReward, RewardSpec, TargetReward
from repro.dnn import get_workload
from repro.timeloop.arch import EYERISS_LIKE, AcceleratorConfig, accelerator_space
from repro.timeloop.model import TimeloopModel

__all__ = ["TimeloopGymEnv", "TIMELOOP_OBJECTIVES"]

TIMELOOP_OBJECTIVES = ("latency", "energy", "joint")

#: Default targets ask for this fraction of the reference design's cost.
DEFAULT_TARGET_FRACTION = 0.5


class TimeloopGymEnv(ArchGymEnv):
    """Design an Eyeriss-like accelerator for a target CNN."""

    env_id = "TimeloopGym-v0"

    def __init__(
        self,
        workload: str = "resnet50",
        objective: str = "latency",
        latency_target_ms: Optional[float] = None,
        energy_target_mj: Optional[float] = None,
        episode_length: int = 1,
        terminate_on_target: bool = False,
        cache_size: int = 4096,
    ) -> None:
        self.layers = get_workload(workload)
        self.model = TimeloopModel()

        reference = self.model.evaluate_network(EYERISS_LIKE, self.layers)
        if latency_target_ms is None:
            latency_target_ms = reference["latency"] * DEFAULT_TARGET_FRACTION
        if energy_target_mj is None:
            energy_target_mj = reference["energy"] * DEFAULT_TARGET_FRACTION

        if objective == "latency":
            reward: RewardSpec = TargetReward("latency", target=latency_target_ms, tolerance=0.05)
        elif objective == "energy":
            reward = TargetReward("energy", target=energy_target_mj, tolerance=0.05)
        elif objective == "joint":
            reward = JointTargetReward(
                components=(
                    TargetReward("latency", target=latency_target_ms, tolerance=0.05),
                    TargetReward("energy", target=energy_target_mj, tolerance=0.05),
                )
            )
        else:
            raise EnvironmentError_(
                f"unknown Timeloop objective {objective!r}; valid: {TIMELOOP_OBJECTIVES}"
            )

        super().__init__(
            action_space=accelerator_space(),
            observation_metrics=["latency", "energy", "area"],
            reward_spec=reward,
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )
        self.workload = workload
        self.objective = objective
        self.latency_target_ms = latency_target_ms
        self.energy_target_mj = energy_target_mj
        self.enable_cache(cache_size)

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        return self.model.evaluate_network(
            AcceleratorConfig.from_action(action), self.layers
        )
