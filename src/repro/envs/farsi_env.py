"""FARSIGym — AR/VR SoC DSE environment (paper Table 3, Fig. 3).

- simulator: the FARSI stand-in (`repro.farsi`)
- workload: an AR/VR task graph (audio_decoder / edge_detection)
- action: PE socket assignment + NoC/memory parameters (Fig. 3)
- observation: ``<performance, power, area>``
- reward: FARSI's *distance to budget*
  ``sum_m alpha_m (D_m - B_m)/B_m`` — **lower is better**, 0 means every
  budget is met (the paper's Fig. 5c reports this distance).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.core.env import ArchGymEnv
from repro.core.rewards import BudgetDistanceReward
from repro.farsi.simulator import FarsiSimulator
from repro.farsi.soc import SoCConfig, soc_space
from repro.farsi.workloads import get_farsi_workload

__all__ = ["FARSIGymEnv"]


class FARSIGymEnv(ArchGymEnv):
    """Design a domain-specific SoC meeting performance/power/area budgets."""

    env_id = "FARSIGym-v0"

    def __init__(
        self,
        workload: str = "edge_detection",
        budgets: Optional[Dict[str, float]] = None,
        alphas: Optional[Dict[str, float]] = None,
        episode_length: int = 1,
        terminate_on_target: bool = False,
        cache_size: int = 4096,
    ) -> None:
        self.farsi_workload = get_farsi_workload(workload)
        effective_budgets = dict(self.farsi_workload.budgets)
        if budgets:
            effective_budgets.update(budgets)
        super().__init__(
            action_space=soc_space(),
            observation_metrics=["performance", "power", "area"],
            reward_spec=BudgetDistanceReward(
                budgets=effective_budgets, alphas=dict(alphas or {})
            ),
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )
        self.workload = workload
        self.simulator = FarsiSimulator()
        self.enable_cache(cache_size)

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        return self.simulator.simulate(
            SoCConfig.from_action(action), self.farsi_workload.graph
        ).metrics()
