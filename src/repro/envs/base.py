"""Shared helpers for the concrete ArchGym environments."""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Mapping

__all__ = ["EvaluationCache"]


class EvaluationCache:
    """A bounded memo for cost-model evaluations.

    DSE agents frequently re-evaluate design points (GA elites, ACO's
    converged trails, BO's incumbent). The underlying simulators are
    deterministic, so caching is semantically transparent; it only
    changes wall-clock, which the Fig. 8 bench measures separately with
    caching disabled.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._store: "OrderedDict[Hashable, Dict[str, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Dict[str, float]]
    ) -> Dict[str, float]:
        if self.maxsize <= 0:
            self.misses += 1
            return compute()
        if key in self._store:
            self.hits += 1
            self._store.move_to_end(key)
            return dict(self._store[key])
        self.misses += 1
        value = compute()
        self._store[key] = dict(value)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return dict(value)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)
