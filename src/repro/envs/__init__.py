"""The four ArchGym environments of the paper (Table 3).

Importing this module registers every environment in the global
registry, so ``repro.make("DRAMGym-v0", ...)`` works immediately.
"""

from repro.core.registry import register
from repro.envs.dram import DRAM_OBJECTIVES, DRAMGymEnv
from repro.envs.farsi_env import FARSIGymEnv
from repro.envs.maestro_env import MaestroGymEnv
from repro.envs.timeloop_env import TIMELOOP_OBJECTIVES, TimeloopGymEnv

__all__ = [
    "DRAMGymEnv",
    "DRAM_OBJECTIVES",
    "FARSIGymEnv",
    "MaestroGymEnv",
    "TimeloopGymEnv",
    "TIMELOOP_OBJECTIVES",
]

register("DRAMGym-v0", DRAMGymEnv, overwrite=True)
register("TimeloopGym-v0", TimeloopGymEnv, overwrite=True)
register("FARSIGym-v0", FARSIGymEnv, overwrite=True)
register("MaestroGym-v0", MaestroGymEnv, overwrite=True)
