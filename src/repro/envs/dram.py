"""DRAMGym — memory controller DSE environment (paper Table 3, Fig. 3).

- simulator: the DRAMSys stand-in (`repro.dramsys`)
- workload: a named memory trace (stream / random / cloud-1 / cloud-2 /
  pointer_chase)
- action: the ten controller parameters of Fig. 3 / Table 4
- observation: ``<latency, power, energy>``
- reward: ``r = target / |target - observed|`` for the ``latency`` or
  ``power`` objectives, harmonic combination for ``joint``
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.core.env import ArchGymEnv
from repro.core.errors import EnvironmentError_
from repro.core.rewards import JointTargetReward, RewardSpec, TargetReward
from repro.dramsys.config import ControllerConfig, controller_space
from repro.dramsys.device import DDR4_2400, DramDevice
from repro.dramsys.simulator import DramSimulator
from repro.dramsys.traces import generate_trace

__all__ = ["DRAMGymEnv", "DRAM_OBJECTIVES"]

#: Supported optimization objectives (Fig. 4 uses all three).
DRAM_OBJECTIVES = ("power", "latency", "joint")

#: When targets are not given explicitly, they are derived from the
#: default controller's cost on the same trace: ambitious but reachable
#: (Table 4's experiment passes its 1 W target explicitly instead).
DEFAULT_POWER_TARGET_FRACTION = 0.9
DEFAULT_LATENCY_TARGET_FRACTION = 0.8


def _build_reward(objective: str, power_target: float, latency_target: float) -> RewardSpec:
    if objective == "power":
        return TargetReward("power", target=power_target, tolerance=0.02)
    if objective == "latency":
        return TargetReward("latency", target=latency_target, tolerance=0.05)
    if objective == "joint":
        return JointTargetReward(
            components=(
                TargetReward("latency", target=latency_target, tolerance=0.05),
                TargetReward("power", target=power_target, tolerance=0.02),
            )
        )
    raise EnvironmentError_(
        f"unknown DRAM objective {objective!r}; valid: {DRAM_OBJECTIVES}"
    )


class DRAMGymEnv(ArchGymEnv):
    """Design a memory controller for a target workload trace."""

    env_id = "DRAMGym-v0"

    def __init__(
        self,
        workload: str = "stream",
        objective: str = "power",
        power_target_w: Optional[float] = None,
        latency_target_ns: Optional[float] = None,
        n_requests: int = 1000,
        trace_seed: int = 0,
        device: DramDevice = DDR4_2400,
        episode_length: int = 1,
        terminate_on_target: bool = False,
        cache_size: int = 4096,
    ) -> None:
        trace = generate_trace(workload, n_requests=n_requests, seed=trace_seed)
        simulator = DramSimulator(device)
        if power_target_w is None or latency_target_ns is None:
            reference = simulator.simulate(ControllerConfig(), trace)
            if power_target_w is None:
                power_target_w = reference.power_w * DEFAULT_POWER_TARGET_FRACTION
            if latency_target_ns is None:
                latency_target_ns = (
                    reference.avg_latency_ns * DEFAULT_LATENCY_TARGET_FRACTION
                )
        super().__init__(
            action_space=controller_space(),
            observation_metrics=["latency", "power", "energy"],
            reward_spec=_build_reward(objective, power_target_w, latency_target_ns),
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )
        self.workload = workload
        self.objective = objective
        self.power_target_w = power_target_w
        self.latency_target_ns = latency_target_ns
        self.trace = trace
        self.simulator = simulator
        self.enable_cache(cache_size)

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        return self.simulator.simulate(
            ControllerConfig.from_action(action), self.trace
        ).metrics()
