"""Memory controller configuration — the DRAMGym action space.

These are the Fig. 3 / Table 4 parameters of the paper: page policy,
scheduler, scheduler buffer organization, request buffer size, response
queue policy, refresh policy, refresh postpone/pull-in elasticity,
arbiter, and the maximum number of in-flight transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.core.errors import SimulationError
from repro.core.spaces import Categorical, CompositeSpace, Discrete

__all__ = [
    "PAGE_POLICIES",
    "SCHEDULERS",
    "SCHEDULER_BUFFERS",
    "RESP_QUEUE_POLICIES",
    "REFRESH_POLICIES",
    "ARBITERS",
    "ControllerConfig",
    "controller_space",
]

#: Row-buffer management policies (DRAMSys naming).
PAGE_POLICIES = ("Open", "OpenAdaptive", "Closed", "ClosedAdaptive")

#: Command scheduling policies. ``FrFcFsGrp`` is FR-FCFS with read/write
#: grouping to reduce data-bus turnarounds.
SCHEDULERS = ("Fifo", "FrFcFs", "FrFcFsGrp")

#: Organization of the scheduler's request storage.
SCHEDULER_BUFFERS = ("Bankwise", "ReadWrite", "Shared")

#: Response queue release order.
RESP_QUEUE_POLICIES = ("Fifo", "Reorder")

#: Refresh granularity: all banks at once, one bank at a time, or pairs.
REFRESH_POLICIES = ("AllBank", "PerBank", "SameBank")

#: Front-end arbiter between the request stream and the scheduler.
ARBITERS = ("Fifo", "Reorder")


@dataclass(frozen=True)
class ControllerConfig:
    """One memory controller design point."""

    page_policy: str = "Open"
    scheduler: str = "FrFcFs"
    scheduler_buffer: str = "Shared"
    request_buffer_size: int = 8
    resp_queue_policy: str = "Reorder"
    refresh_policy: str = "AllBank"
    refresh_max_postponed: int = 4
    refresh_max_pulledin: int = 4
    arbiter: str = "Reorder"
    max_active_transactions: int = 16

    def __post_init__(self) -> None:
        def check(value: str, options: tuple, label: str) -> None:
            if value not in options:
                raise SimulationError(f"{label} {value!r} not in {options}")

        check(self.page_policy, PAGE_POLICIES, "page_policy")
        check(self.scheduler, SCHEDULERS, "scheduler")
        check(self.scheduler_buffer, SCHEDULER_BUFFERS, "scheduler_buffer")
        check(self.resp_queue_policy, RESP_QUEUE_POLICIES, "resp_queue_policy")
        check(self.refresh_policy, REFRESH_POLICIES, "refresh_policy")
        check(self.arbiter, ARBITERS, "arbiter")
        if self.request_buffer_size < 1:
            raise SimulationError("request_buffer_size must be >= 1")
        if self.refresh_max_postponed < 0 or self.refresh_max_pulledin < 0:
            raise SimulationError("refresh elasticity must be >= 0")
        if self.max_active_transactions < 1:
            raise SimulationError("max_active_transactions must be >= 1")

    @classmethod
    def from_action(cls, action: Mapping[str, Any]) -> "ControllerConfig":
        """Build a config from a DRAMGym action dict (Fig. 3 names)."""
        return cls(
            page_policy=action["PagePolicy"],
            scheduler=action["Scheduler"],
            scheduler_buffer=action["SchedulerBuffer"],
            request_buffer_size=int(action["RequestBufferSize"]),
            resp_queue_policy=action["RespQueue"],
            refresh_policy=action["RefreshPolicy"],
            refresh_max_postponed=int(action["RefreshMaxPostponed"]),
            refresh_max_pulledin=int(action["RefreshMaxPulledin"]),
            arbiter=action["Arbiter"],
            max_active_transactions=int(action["MaxActiveTransactions"]),
        )

    def to_action(self) -> Dict[str, Any]:
        """Inverse of :meth:`from_action`."""
        return {
            "PagePolicy": self.page_policy,
            "Scheduler": self.scheduler,
            "SchedulerBuffer": self.scheduler_buffer,
            "RequestBufferSize": self.request_buffer_size,
            "RespQueue": self.resp_queue_policy,
            "RefreshPolicy": self.refresh_policy,
            "RefreshMaxPostponed": self.refresh_max_postponed,
            "RefreshMaxPulledin": self.refresh_max_pulledin,
            "Arbiter": self.arbiter,
            "MaxActiveTransactions": self.max_active_transactions,
        }


def controller_space() -> CompositeSpace:
    """The DRAMGym action space (paper Fig. 3, ~1.9e7 design points in the
    paper's full granularity; this grid keeps every axis and every Table 4
    value)."""
    return CompositeSpace(
        [
            Categorical("PagePolicy", PAGE_POLICIES),
            Categorical("Scheduler", SCHEDULERS),
            Categorical("SchedulerBuffer", SCHEDULER_BUFFERS),
            Discrete("RequestBufferSize", low=1, high=8, step=1),
            Categorical("RespQueue", RESP_QUEUE_POLICIES),
            Categorical("RefreshPolicy", REFRESH_POLICIES),
            Discrete("RefreshMaxPostponed", low=1, high=8, step=1),
            Discrete("RefreshMaxPulledin", low=1, high=8, step=1),
            Categorical("Arbiter", ARBITERS),
            Discrete.pow2("MaxActiveTransactions", 1, 128),
        ]
    )
