"""Trace characterization utilities.

The DRAM DSE experiments hinge on workloads differing in row locality,
bank parallelism, read/write mix and arrival burstiness (paper §5:
streaming vs random vs cloud traces). These functions quantify those
properties for any :class:`~repro.dramsys.traces.Trace`, independent of
any controller — useful both for validating the synthetic generators
and for characterizing user-supplied traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.errors import SimulationError
from repro.dramsys.device import DDR4_2400, DramDevice
from repro.dramsys.traces import Trace

__all__ = ["TraceProfile", "profile_trace"]


@dataclass(frozen=True)
class TraceProfile:
    """Controller-independent workload characteristics."""

    name: str
    n_requests: int
    duration_ns: float
    write_fraction: float
    #: fraction of accesses that hit the same (bank, row) as the previous
    #: access to that bank — an upper bound on open-page row hit rate
    row_locality: float
    #: normalized entropy of the bank access histogram (1 = perfectly
    #: balanced across banks, 0 = single bank)
    bank_spread: float
    #: mean arrival gap in ns
    mean_gap_ns: float
    #: coefficient of variation of arrival gaps (>1 = bursty)
    burstiness: float
    #: distinct rows touched per 1000 requests (footprint measure)
    row_footprint_per_k: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_requests": float(self.n_requests),
            "duration_ns": self.duration_ns,
            "write_fraction": self.write_fraction,
            "row_locality": self.row_locality,
            "bank_spread": self.bank_spread,
            "mean_gap_ns": self.mean_gap_ns,
            "burstiness": self.burstiness,
            "row_footprint_per_k": self.row_footprint_per_k,
        }


def profile_trace(trace: Trace, device: DramDevice = DDR4_2400) -> TraceProfile:
    """Compute the :class:`TraceProfile` of a trace under a device's
    address mapping."""
    if len(trace) == 0:
        raise SimulationError("cannot profile an empty trace")

    banks = np.empty(len(trace), dtype=np.int64)
    rows = np.empty(len(trace), dtype=np.int64)
    for i, req in enumerate(trace.requests):
        banks[i], rows[i] = device.map_address(req.address)

    # row locality: per-bank sequential same-row accesses
    last_row: Dict[int, int] = {}
    hits = 0
    for b, r in zip(banks, rows):
        if last_row.get(int(b)) == int(r):
            hits += 1
        last_row[int(b)] = int(r)
    row_locality = hits / len(trace)

    # bank spread: normalized histogram entropy
    counts = np.bincount(banks, minlength=device.banks).astype(float)
    probs = counts / counts.sum()
    nonzero = probs[probs > 0]
    if device.banks > 1:
        bank_spread = float(-(nonzero * np.log(nonzero)).sum() / np.log(device.banks))
    else:
        bank_spread = 0.0

    arrivals = np.array([r.arrival_ns for r in trace.requests])
    gaps = np.diff(arrivals)
    if len(gaps) and gaps.mean() > 0:
        mean_gap = float(gaps.mean())
        burstiness = float(gaps.std() / gaps.mean())
    else:
        mean_gap = 0.0
        burstiness = 0.0

    distinct_rows = len({(int(b), int(r)) for b, r in zip(banks, rows)})
    return TraceProfile(
        name=trace.name,
        n_requests=len(trace),
        duration_ns=trace.duration_ns,
        write_fraction=trace.write_fraction,
        row_locality=row_locality,
        bank_spread=bank_spread,
        mean_gap_ns=mean_gap,
        burstiness=burstiness,
        row_footprint_per_k=1000.0 * distinct_rows / len(trace),
    )
