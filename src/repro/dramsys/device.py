"""DRAM device timing and power models.

The reproduction's stand-in for DRAMSys4.0's device layer. Timing
parameters follow JEDEC DDR conventions (all values in nanoseconds);
energy parameters follow the DRAMPower current-based methodology,
pre-multiplied into per-command energies at the *rank* level (device
energy x devices-per-rank), so that total power lands in the realistic
0.5–3 W range the paper's 1 W target lives in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import SimulationError

__all__ = [
    "DramTimings",
    "DramEnergy",
    "DramDevice",
    "ADDRESS_MAPPINGS",
    "DDR4_2400",
    "DDR3_1600",
    "LPDDR4_3200",
]


@dataclass(frozen=True)
class DramTimings:
    """JEDEC-style timing parameters, in nanoseconds.

    Attributes
    ----------
    tck:
        Clock period.
    trcd:
        ACT -> column command delay.
    trp:
        PRE -> ACT delay.
    tcl:
        Read column command -> first data (CAS latency).
    tcwd:
        Write column command -> first data (CAS write delay).
    tras:
        ACT -> PRE minimum.
    trc:
        ACT -> ACT minimum, same bank.
    trfc:
        All-bank refresh command duration.
    trefi:
        Average refresh interval.
    twr:
        Write recovery (end of write burst -> PRE).
    twtr:
        Write burst -> read command turnaround.
    trtw:
        Read -> write turnaround on the data bus.
    burst_length:
        Number of beats per access (data transferred each half cycle).
    """

    tck: float = 0.833
    trcd: float = 13.32
    trp: float = 13.32
    tcl: float = 13.32
    tcwd: float = 10.0
    tras: float = 32.0
    trc: float = 45.32
    trfc: float = 350.0
    trefi: float = 7800.0
    twr: float = 15.0
    twtr: float = 7.5
    trtw: float = 2.5
    burst_length: int = 8

    def __post_init__(self) -> None:
        if self.tck <= 0:
            raise SimulationError("tck must be positive")
        if self.trc < self.tras:
            raise SimulationError("trc must be >= tras")
        if self.trefi <= self.trfc:
            raise SimulationError("trefi must exceed trfc")
        if self.burst_length not in (4, 8, 16):
            raise SimulationError("burst_length must be 4, 8 or 16")

    @property
    def burst_time(self) -> float:
        """Data bus occupancy of one burst (double data rate)."""
        return self.burst_length / 2 * self.tck

    @property
    def row_miss_penalty(self) -> float:
        """Extra latency of a closed-row access over a row hit."""
        return self.trcd

    @property
    def row_conflict_penalty(self) -> float:
        """Extra latency of a conflicting access over a row hit."""
        return self.trp + self.trcd


@dataclass(frozen=True)
class DramEnergy:
    """Per-command energies in nanojoules, at rank granularity.

    Derived from DRAMPower-style IDD currents: e.g.
    ``e_act = (IDD0 - IDD3N) * VDD * tRC * devices_per_rank``.
    """

    e_act: float = 14.4         # one ACT+PRE pair
    e_read: float = 7.2         # one read burst
    e_write: float = 7.9        # one write burst
    e_refresh: float = 810.0    # one all-bank refresh
    p_background_active: float = 0.81   # W, >=1 bank open
    p_background_idle: float = 0.54     # W, all banks precharged

    def __post_init__(self) -> None:
        for name in ("e_act", "e_read", "e_write", "e_refresh"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be non-negative")
        if self.p_background_idle > self.p_background_active:
            raise SimulationError("idle background power cannot exceed active")


#: Address mapping schemes (a DRAMSys configuration axis):
#: ``bank_interleaved`` stripes consecutive cache lines across banks
#: (bank parallelism + per-bank row locality for streams);
#: ``row_interleaved`` keeps consecutive lines in the same row of the
#: same bank until the row is exhausted (maximum row locality, no bank
#: parallelism for streams).
ADDRESS_MAPPINGS = ("bank_interleaved", "row_interleaved")


@dataclass(frozen=True)
class DramDevice:
    """A DRAM rank: geometry + timings + energies.

    The default address mapping is bank-interleaved: cache lines are
    striped across banks; within a bank, ``lines_per_row`` consecutive
    lines share a row. This gives streaming workloads both bank
    parallelism and row locality, and random workloads frequent
    conflicts — the contrast the DRAM DSE experiments rely on.
    """

    name: str = "DDR4-2400"
    banks: int = 16
    lines_per_row: int = 128        # 8 KiB row / 64 B line
    line_bytes: int = 64
    timings: DramTimings = DramTimings()
    energy: DramEnergy = DramEnergy()
    address_mapping: str = "bank_interleaved"

    def __post_init__(self) -> None:
        if self.banks < 1 or self.banks & (self.banks - 1):
            raise SimulationError("banks must be a positive power of two")
        if self.lines_per_row < 1:
            raise SimulationError("lines_per_row must be positive")
        if self.address_mapping not in ADDRESS_MAPPINGS:
            raise SimulationError(
                f"address_mapping must be one of {ADDRESS_MAPPINGS}"
            )

    def map_address(self, address: int) -> tuple[int, int]:
        """Return ``(bank, row)`` for a byte address."""
        line = address // self.line_bytes
        if self.address_mapping == "bank_interleaved":
            bank = line % self.banks
            row = (line // self.banks) // self.lines_per_row
        else:  # row_interleaved
            row_index = line // self.lines_per_row
            bank = row_index % self.banks
            row = row_index // self.banks
        return bank, row


#: DDR4-2400 rank, the default device (matches DRAMSys' stock DDR4 config).
DDR4_2400 = DramDevice()

#: Slower DDR3 profile for cross-device experiments.
DDR3_1600 = DramDevice(
    name="DDR3-1600",
    banks=8,
    timings=DramTimings(
        tck=1.25, trcd=13.75, trp=13.75, tcl=13.75, tcwd=10.0,
        tras=35.0, trc=48.75, trfc=260.0, trefi=7800.0,
        twr=15.0, twtr=7.5, trtw=2.5, burst_length=8,
    ),
    energy=DramEnergy(
        e_act=10.0, e_read=5.2, e_write=5.6, e_refresh=380.0,
        p_background_active=0.55, p_background_idle=0.38,
    ),
)

#: Low-power mobile profile.
LPDDR4_3200 = DramDevice(
    name="LPDDR4-3200",
    banks=8,
    timings=DramTimings(
        tck=0.625, trcd=18.0, trp=18.0, tcl=17.5, tcwd=9.0,
        tras=42.0, trc=60.0, trfc=280.0, trefi=3900.0,
        twr=18.0, twtr=10.0, trtw=3.0, burst_length=16,
    ),
    energy=DramEnergy(
        e_act=4.5, e_read=2.2, e_write=2.5, e_refresh=210.0,
        p_background_active=0.18, p_background_idle=0.09,
    ),
)
