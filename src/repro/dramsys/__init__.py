"""DRAM subsystem substrate — the DRAMSys stand-in (paper Table 3)."""

from repro.dramsys.config import (
    ARBITERS,
    PAGE_POLICIES,
    REFRESH_POLICIES,
    RESP_QUEUE_POLICIES,
    SCHEDULER_BUFFERS,
    SCHEDULERS,
    ControllerConfig,
    controller_space,
)
from repro.dramsys.device import (
    ADDRESS_MAPPINGS,
    DDR3_1600,
    DDR4_2400,
    LPDDR4_3200,
    DramDevice,
    DramEnergy,
    DramTimings,
)
from repro.dramsys.simulator import DramSimulator, SimResult
from repro.dramsys.traces import TRACE_NAMES, MemoryRequest, Trace, generate_trace

__all__ = [
    "ARBITERS",
    "PAGE_POLICIES",
    "REFRESH_POLICIES",
    "RESP_QUEUE_POLICIES",
    "SCHEDULER_BUFFERS",
    "SCHEDULERS",
    "ControllerConfig",
    "controller_space",
    "ADDRESS_MAPPINGS",
    "DDR3_1600",
    "DDR4_2400",
    "LPDDR4_3200",
    "DramDevice",
    "DramEnergy",
    "DramTimings",
    "DramSimulator",
    "SimResult",
    "TRACE_NAMES",
    "MemoryRequest",
    "Trace",
    "generate_trace",
]
