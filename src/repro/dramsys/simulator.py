"""Transaction-level DRAM subsystem simulator (the DRAMSys stand-in).

The simulator executes a memory trace against one
:class:`~repro.dramsys.config.ControllerConfig` and a
:class:`~repro.dramsys.device.DramDevice`, producing the
``<latency, power, energy>`` observation of Table 3.

Modeled mechanisms — exactly the ones the controller parameters tune:

- per-bank row-buffer state machines (hit / miss / conflict timing with
  tRCD/tRP/tCL/tRC enforcement),
- page policies: open, closed, and their adaptive variants (speculative
  precharge driven by pending-queue lookahead),
- schedulers: FIFO, FR-FCFS (row hits first) and FR-FCFS-Grouped (row
  hits first, grouped by bus direction to avoid turnarounds),
- scheduler buffer organizations: shared pool, read/write queues with
  watermark-based write draining, and bankwise queues with round-robin
  bank selection,
- a shared data bus with read<->write turnaround penalties,
- refresh with postpone / pull-in elasticity at all-bank, same-bank and
  per-bank granularity,
- a front-end arbiter that bounds the scheduler's reorder window, an
  in-order or out-of-order response queue, and a cap on in-flight
  transactions,
- a DRAMPower-style energy model (per-command energies + state-dependent
  background power).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import SimulationError
from repro.dramsys.config import ControllerConfig
from repro.dramsys.device import DDR4_2400, DramDevice
from repro.dramsys.traces import Trace

__all__ = ["SimResult", "DramSimulator"]


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of simulating one trace on one controller."""

    avg_latency_ns: float
    power_w: float
    energy_uj: float
    exec_time_ns: float
    bandwidth_gbps: float
    row_hits: int
    row_misses: int
    row_conflicts: int
    refreshes: int
    reads: int
    writes: int
    energy_breakdown_nj: Dict[str, float] = None  # act/rw/refresh/background

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    def metrics(self) -> Dict[str, float]:
        """The DRAMGym observation dictionary."""
        return {
            "latency": self.avg_latency_ns,
            "power": self.power_w,
            "energy": self.energy_uj,
            "exec_time": self.exec_time_ns,
            "bandwidth": self.bandwidth_gbps,
            "row_hit_rate": self.row_hit_rate,
        }


@dataclass
class _Bank:
    open_row: Optional[int] = None
    ready_at: float = 0.0
    last_act: float = float("-inf")
    blocked_until: float = 0.0      # refresh blackout
    opened_since: Optional[float] = None
    open_time: float = 0.0

    def accumulate_open(self, until: float) -> None:
        if self.opened_since is not None:
            self.open_time += max(0.0, until - self.opened_since)
            self.opened_since = None


@dataclass
class _Entry:
    order: int
    arrival: float
    address: int
    bank: int
    row: int
    is_write: bool
    finish: float = 0.0


@dataclass
class _RefreshPlan:
    """Granularity-specific refresh parameters (derived from policy)."""

    interval: float         # time between refresh operations
    duration: float         # blackout per operation
    energy: float           # nJ per operation
    banks_per_op: int       # how many banks each operation blocks


class DramSimulator:
    """Simulates memory traces against controller design points.

    A single instance is stateless across calls: :meth:`simulate` can be
    invoked repeatedly (the DSE loop does exactly that).
    """

    def __init__(self, device: DramDevice = DDR4_2400):
        self.device = device

    # -- public API ---------------------------------------------------------------

    def simulate(self, config: ControllerConfig, trace: Trace) -> SimResult:
        """Run ``trace`` through a controller built from ``config``."""
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        return _Run(self.device, config, trace).execute()


class _Run:
    """One simulation execution (all mutable state lives here)."""

    def __init__(self, device: DramDevice, config: ControllerConfig, trace: Trace):
        self.dev = device
        self.t = device.timings
        self.cfg = config
        self.trace = trace

        self.banks = [_Bank() for _ in range(device.banks)]
        self.bus_free = 0.0
        self.bus_last_write: Optional[bool] = None
        self.now = 0.0

        # refresh
        self.plan = self._refresh_plan()
        self.refresh_due = self.plan.interval
        self.refresh_debt = 0
        self.refresh_credit = 0
        self.refresh_rr_bank = 0
        self.n_refreshes = 0

        # energy accounting (nJ), split by component
        self.e_act_total = 0.0
        self.e_rw_total = 0.0
        self.e_refresh_total = 0.0

        # stats
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0
        self.reads = 0
        self.writes = 0

        # in-flight transaction cap
        self.inflight: List[float] = []  # min-heap of finish times

        # read/write drain state for the ReadWrite buffer organization
        self.draining_writes = False
        # bankwise round-robin pointer
        self.bank_rr = 0

    # -- refresh ---------------------------------------------------------------------

    def _refresh_plan(self) -> _RefreshPlan:
        t, e, nbanks = self.t, self.dev.energy, self.dev.banks
        if self.cfg.refresh_policy == "AllBank":
            return _RefreshPlan(t.trefi, t.trfc, e.e_refresh, nbanks)
        if self.cfg.refresh_policy == "SameBank":
            # two bank groups refreshed alternately, half the blackout each
            return _RefreshPlan(t.trefi / 2, t.trfc * 0.6, e.e_refresh / 2, nbanks // 2)
        # PerBank: one bank at a time, short blackout, lowest disturbance
        return _RefreshPlan(t.trefi / nbanks, t.trfc * 0.3, e.e_refresh / nbanks, 1)

    def _blocked_banks_for_refresh(self) -> List[int]:
        n = self.plan.banks_per_op
        start = self.refresh_rr_bank
        self.refresh_rr_bank = (start + n) % self.dev.banks
        return [(start + i) % self.dev.banks for i in range(n)]

    def _perform_refresh(self, at: float, count: int = 1) -> float:
        """Execute ``count`` back-to-back refresh operations at ``at``.
        Returns the time the blackout ends."""
        end = at
        for _ in range(count):
            for b in self._blocked_banks_for_refresh():
                bank = self.banks[b]
                bank.accumulate_open(end)   # refresh precharges the row
                bank.open_row = None
                bank.blocked_until = max(bank.blocked_until, end + self.plan.duration)
            self.e_refresh_total += self.plan.energy
            self.n_refreshes += 1
            end += self.plan.duration
        return end

    def _refresh_tick(self, buffer_nonempty: bool) -> None:
        """Apply the postpone/pull-in policy at the current time."""
        while self.now >= self.refresh_due:
            if self.refresh_credit > 0:
                # a pulled-in refresh already covered this interval
                self.refresh_credit -= 1
                self.refresh_due += self.plan.interval
            elif buffer_nonempty and self.refresh_debt < self.cfg.refresh_max_postponed:
                self.refresh_debt += 1
                self.refresh_due += self.plan.interval
            else:
                # pay the whole debt in one blackout burst
                self._perform_refresh(self.now, count=self.refresh_debt + 1)
                self.refresh_debt = 0
                self.refresh_due += self.plan.interval

    def _try_pull_in(self, idle_until: float) -> None:
        """Issue early refreshes into an idle gap, up to the pull-in cap."""
        while (
            self.refresh_credit < self.cfg.refresh_max_pulledin
            and self.now + self.plan.duration <= idle_until
        ):
            self._perform_refresh(self.now)
            self.refresh_credit += 1
            self.now += self.plan.duration

    # -- scheduling -----------------------------------------------------------------

    def _visible(self, buffer: List[_Entry]) -> List[_Entry]:
        """Entries the scheduler may reorder among (arbiter policy)."""
        if self.cfg.arbiter == "Reorder":
            return buffer
        # Fifo arbiter: reordering restricted to the oldest half-window
        window = max(1, (self.cfg.request_buffer_size + 1) // 2)
        return buffer[:window]

    def _candidates(self, buffer: List[_Entry]) -> List[_Entry]:
        """Apply the scheduler-buffer organization, then the arbiter."""
        org = self.cfg.scheduler_buffer
        if org == "ReadWrite":
            writes = [e for e in buffer if e.is_write]
            cap = self.cfg.request_buffer_size
            if self.draining_writes:
                if len(writes) <= max(1, cap // 4):
                    self.draining_writes = False
            elif len(writes) >= max(1, (3 * cap) // 4):
                self.draining_writes = True
            pool = writes if (self.draining_writes and writes) else \
                [e for e in buffer if not e.is_write] or buffer
            return self._visible(pool)
        if org == "Bankwise":
            banks_with_work = sorted({e.bank for e in buffer})
            for step in range(len(banks_with_work)):
                b = banks_with_work[(self.bank_rr + step) % len(banks_with_work)]
                pool = [e for e in buffer if e.bank == b]
                if pool:
                    self.bank_rr = (self.bank_rr + step + 1) % max(1, len(banks_with_work))
                    return self._visible(pool)
        return self._visible(buffer)

    def _select(self, buffer: List[_Entry]) -> _Entry:
        pool = self._candidates(buffer)
        policy = self.cfg.scheduler
        if policy == "Fifo":
            return pool[0]

        def is_hit(e: _Entry) -> bool:
            return self.banks[e.bank].open_row == e.row

        if policy == "FrFcFs":
            hits = [e for e in pool if is_hit(e)]
            return hits[0] if hits else pool[0]

        # FrFcFsGrp: row hits matching the current bus direction first,
        # then any row hit, then same-direction, then oldest.
        direction = self.bus_last_write
        same_dir_hits = [e for e in pool if is_hit(e) and e.is_write == direction]
        if same_dir_hits:
            return same_dir_hits[0]
        hits = [e for e in pool if is_hit(e)]
        if hits:
            return hits[0]
        same_dir = [e for e in pool if e.is_write == direction]
        return same_dir[0] if same_dir else pool[0]

    # -- per-access timing ---------------------------------------------------------

    def _service(self, entry: _Entry) -> None:
        bank = self.banks[entry.bank]
        t = self.t
        start = max(self.now, bank.ready_at, bank.blocked_until)

        if bank.open_row == entry.row:
            self.row_hits += 1
            col_ready = start
        elif bank.open_row is None:
            self.row_misses += 1
            act_at = max(start, bank.last_act + t.trc)
            bank.last_act = act_at
            bank.opened_since = act_at
            bank.open_row = entry.row
            self.e_act_total += self.dev.energy.e_act
            col_ready = act_at + t.trcd
        else:
            self.row_conflicts += 1
            bank.accumulate_open(start)
            pre_done = max(start + t.trp, bank.last_act + t.tras + t.trp)
            act_at = max(pre_done, bank.last_act + t.trc)
            bank.last_act = act_at
            bank.opened_since = act_at
            bank.open_row = entry.row
            self.e_act_total += self.dev.energy.e_act
            col_ready = act_at + t.trcd

        cas = t.tcwd if entry.is_write else t.tcl
        turnaround = 0.0
        if self.bus_last_write is not None and self.bus_last_write != entry.is_write:
            turnaround = t.twtr if self.bus_last_write else t.trtw
        data_start = max(col_ready + cas, self.bus_free + turnaround)
        finish = data_start + t.burst_time

        self.bus_free = finish
        self.bus_last_write = entry.is_write
        bank.ready_at = finish + (t.twr if entry.is_write else 0.0)
        entry.finish = finish

        if entry.is_write:
            self.writes += 1
            self.e_rw_total += self.dev.energy.e_write
        else:
            self.reads += 1
            self.e_rw_total += self.dev.energy.e_read

        self.now = data_start
        heapq.heappush(self.inflight, finish)

    def _apply_page_policy(self, entry: _Entry, buffer: List[_Entry]) -> None:
        bank = self.banks[entry.bank]
        policy = self.cfg.page_policy
        if policy == "Open":
            return
        same_row_pending = any(
            e.bank == entry.bank and e.row == entry.row for e in buffer
        )
        if policy == "Closed" or (
            policy == "ClosedAdaptive" and not same_row_pending
        ) or (
            policy == "OpenAdaptive" and not same_row_pending
        ):
            close_at = bank.ready_at
            bank.accumulate_open(close_at)
            bank.open_row = None
            # auto-precharge overlaps other banks; only this bank pays tRP
            bank.ready_at = close_at + self.t.trp

    # -- main loop -------------------------------------------------------------------

    def execute(self) -> SimResult:
        requests = list(self.trace.requests)
        n = len(requests)
        entries: List[_Entry] = []
        for i, r in enumerate(requests):
            bank, row = self.dev.map_address(r.address)
            entries.append(_Entry(i, r.arrival_ns, r.address, bank, row, r.is_write))

        pending = entries  # sorted by arrival already
        next_idx = 0
        buffer: List[_Entry] = []
        done: List[_Entry] = []

        while next_idx < n or buffer:
            # admit arrivals up to the request buffer capacity
            while (
                next_idx < n
                and pending[next_idx].arrival <= self.now
                and len(buffer) < self.cfg.request_buffer_size
            ):
                buffer.append(pending[next_idx])
                next_idx += 1

            if not buffer:
                # idle: opportunity to pull refreshes in, then jump to the
                # next arrival
                next_arrival = pending[next_idx].arrival
                self._try_pull_in(next_arrival)
                self.now = max(self.now, next_arrival)
                continue

            self._refresh_tick(buffer_nonempty=True)

            # in-flight cap: wait for the oldest transaction to retire
            while len(self.inflight) >= self.cfg.max_active_transactions:
                self.now = max(self.now, heapq.heappop(self.inflight))
            while self.inflight and self.inflight[0] <= self.now:
                heapq.heappop(self.inflight)

            entry = self._select(buffer)
            buffer.remove(entry)
            self._service(entry)
            self._apply_page_policy(entry, buffer)
            done.append(entry)

        end_time = max(e.finish for e in done)
        exec_time = max(end_time, 1e-9)

        # response queue: in-order release adds queueing delay
        latencies = self._release_latencies(done)
        avg_latency = sum(latencies) / len(latencies)

        # background energy from bank-open residency
        for bank in self.banks:
            bank.accumulate_open(end_time)
        open_frac = min(
            1.0, sum(b.open_time for b in self.banks) / exec_time
        )
        e = self.dev.energy
        p_bg = e.p_background_idle + (e.p_background_active - e.p_background_idle) * open_frac
        background_energy = p_bg * exec_time  # W * ns = nJ
        cmd_energy = self.e_act_total + self.e_rw_total + self.e_refresh_total
        total_energy = cmd_energy + background_energy

        bytes_moved = n * self.dev.line_bytes
        return SimResult(
            avg_latency_ns=avg_latency,
            power_w=total_energy / exec_time,
            energy_uj=total_energy / 1e3,
            exec_time_ns=exec_time,
            bandwidth_gbps=bytes_moved / exec_time,
            row_hits=self.row_hits,
            row_misses=self.row_misses,
            row_conflicts=self.row_conflicts,
            refreshes=self.n_refreshes,
            reads=self.reads,
            writes=self.writes,
            energy_breakdown_nj={
                "activate": self.e_act_total,
                "read_write": self.e_rw_total,
                "refresh": self.e_refresh_total,
                "background": background_energy,
            },
        )

    def _release_latencies(self, done: List[_Entry]) -> List[float]:
        ordered = sorted(done, key=lambda e: e.order)
        latencies: List[float] = []
        if self.cfg.resp_queue_policy == "Reorder":
            for e in ordered:
                latencies.append(max(0.0, e.finish - e.arrival))
            return latencies
        release = 0.0
        for e in ordered:
            release = max(release, e.finish)
            latencies.append(max(0.0, release - e.arrival))
        return latencies
