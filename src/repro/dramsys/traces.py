"""Synthetic memory traces — the DRAMGym workloads.

DRAMSys ships trace files (streaming, random access, cloud workloads);
the paper additionally uses a pointer-chasing pattern for the Table 4
experiment. Since those artifacts are not redistributable, we generate
traces with the same access-pattern taxonomy:

- ``stream``         — sequential cache lines, high row locality.
- ``random``         — uniform random lines, frequent row conflicts.
- ``cloud-1``        — read-heavy, zipf-like hot set + background scans.
- ``cloud-2``        — write-heavier, larger footprint, bursty arrivals.
- ``pointer_chase``  — serially dependent random reads, long gaps.

Each generator is fully determined by its seed, so experiments are
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.core.errors import SimulationError

__all__ = ["MemoryRequest", "Trace", "generate_trace", "TRACE_NAMES"]

LINE = 64  # bytes per request


@dataclass(frozen=True)
class MemoryRequest:
    """One memory transaction as seen by the controller front-end."""

    arrival_ns: float
    address: int
    is_write: bool


@dataclass(frozen=True)
class Trace:
    """A named, immutable sequence of requests."""

    name: str
    requests: tuple

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration_ns(self) -> float:
        return self.requests[-1].arrival_ns if self.requests else 0.0

    @property
    def write_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.is_write for r in self.requests) / len(self.requests)


def _sorted_requests(rows: List[tuple]) -> tuple:
    rows.sort(key=lambda r: r[0])
    return tuple(MemoryRequest(t, a, w) for t, a, w in rows)


def _stream(n: int, rng: np.random.Generator) -> tuple:
    """Sequential lines at a tight arrival rate; 20% writes (copy-like)."""
    base = int(rng.integers(0, 1 << 20)) * LINE
    t = 0.0
    rows = []
    for i in range(n):
        t += float(rng.exponential(6.0))
        rows.append((t, base + i * LINE, bool(rng.random() < 0.2)))
    return _sorted_requests(rows)


def _random(n: int, rng: np.random.Generator) -> tuple:
    """Uniform random lines over a 256 MiB footprint; 30% writes."""
    footprint_lines = (256 << 20) // LINE
    t = 0.0
    rows = []
    for _ in range(n):
        t += float(rng.exponential(12.0))
        addr = int(rng.integers(0, footprint_lines)) * LINE
        rows.append((t, addr, bool(rng.random() < 0.3)))
    return _sorted_requests(rows)


def _zipf_hot_set(rng: np.random.Generator, n_hot: int) -> np.ndarray:
    footprint_lines = (512 << 20) // LINE
    return rng.integers(0, footprint_lines, size=n_hot)


def _cloud(n: int, rng: np.random.Generator, write_frac: float, hot_frac: float) -> tuple:
    """Hot-set reuse plus background scans with bursty arrivals."""
    hot = _zipf_hot_set(rng, 256)
    # zipf-ish popularity over the hot set
    ranks = np.arange(1, len(hot) + 1, dtype=np.float64)
    popularity = 1.0 / ranks
    popularity /= popularity.sum()
    t = 0.0
    scan_line = int(rng.integers(0, 1 << 20))
    rows = []
    for _ in range(n):
        # bursts: occasionally a long gap, otherwise back-to-back
        gap = float(rng.exponential(4.0)) if rng.random() > 0.05 else float(rng.exponential(120.0))
        t += gap
        if rng.random() < hot_frac:
            line = int(rng.choice(hot, p=popularity))
        else:
            scan_line += 1
            line = scan_line
        rows.append((t, line * LINE, bool(rng.random() < write_frac)))
    return _sorted_requests(rows)


def _pointer_chase(n: int, rng: np.random.Generator) -> tuple:
    """Serially dependent loads: each arrival waits out the previous miss."""
    footprint_lines = (1 << 30) // LINE
    t = 0.0
    rows = []
    for _ in range(n):
        # dependent access: next request cannot issue before the previous
        # one returns, so arrivals are spaced by a full miss latency.
        t += 60.0 + float(rng.exponential(25.0))
        addr = int(rng.integers(0, footprint_lines)) * LINE
        rows.append((t, addr, False))
    return _sorted_requests(rows)


_GENERATORS: Dict[str, Callable[[int, np.random.Generator], tuple]] = {
    "stream": _stream,
    "random": _random,
    "cloud-1": lambda n, rng: _cloud(n, rng, write_frac=0.15, hot_frac=0.7),
    "cloud-2": lambda n, rng: _cloud(n, rng, write_frac=0.45, hot_frac=0.45),
    "pointer_chase": _pointer_chase,
}

#: Names accepted by :func:`generate_trace` (and the DRAMGym ``workload``).
TRACE_NAMES = tuple(_GENERATORS)


def generate_trace(name: str, n_requests: int = 2000, seed: int = 0) -> Trace:
    """Generate a named workload trace.

    Parameters
    ----------
    name:
        One of :data:`TRACE_NAMES`.
    n_requests:
        Trace length; the paper's DSE costs are aggregate, so a few
        thousand requests suffice for stable statistics.
    seed:
        Generator seed; the same (name, n, seed) always yields the same
        trace.
    """
    if name not in _GENERATORS:
        raise SimulationError(f"unknown trace {name!r}; have {sorted(_GENERATORS)}")
    if n_requests < 1:
        raise SimulationError("n_requests must be >= 1")
    rng = np.random.default_rng(seed)
    return Trace(name=name, requests=_GENERATORS[name](n_requests, rng))
