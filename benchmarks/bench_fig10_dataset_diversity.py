"""Fig. 10 — proxy RMSE vs dataset size and diversity.

Paper experiment: train random-forest proxies on datasets of growing
size, constructed either from a single agent's exploration (ACO-only)
or from all agents' merged trajectories (diverse), and evaluate on a
common simulator-labeled test set. Claims to reproduce:

1. RMSE drops as dataset size grows (size matters),
2. at matched sizes, the diverse dataset yields lower RMSE than the
   single-source dataset, with the gap most visible at larger sizes
   (diversity matters — the paper reports up to 42x average RMSE
   reduction with both effects combined).
"""

import numpy as np

from repro.proxy import ProxyCostModel

from _proxy_common import TARGETS, collect_datasets, make_env, uniform_test_set

SIZES = (100, 400, 1200)


def run_fig10():
    diverse, aco_only = collect_datasets()
    X_test, Y_test = uniform_test_set()
    env = make_env()
    rng = np.random.default_rng(3)

    rmse_table = {}  # (source, size) -> {target: relative rmse}
    for size in SIZES:
        subsets = {
            "diverse": diverse.sample_balanced(size, rng),
            "aco_only": aco_only.sample(size, rng),
        }
        for source, subset in subsets.items():
            proxy = ProxyCostModel(env.action_space, TARGETS).fit_with_search(
                subset, n_trials=4, seed=0
            )
            rmse_table[(source, size)] = proxy.evaluate_relative(X_test, Y_test)
    return rmse_table


def test_fig10_dataset_size_and_diversity(run_once):
    rmse_table = run_once(run_fig10)

    print("\n=== Fig. 10: proxy relative RMSE (%) on a common test set ===")
    print(f"{'size':>6s} " + "".join(
        f"{src + ':' + t:>18s}" for src in ("diverse", "aco_only") for t in TARGETS
    ))
    for size in SIZES:
        row = f"{size:>6d} "
        for src in ("diverse", "aco_only"):
            for t in TARGETS:
                row += f"{rmse_table[(src, size)][t] * 100:>18.2f}"
        print(row)

    def mean_rmse(source, size):
        return float(np.mean([rmse_table[(source, size)][t] for t in TARGETS]))

    # claim 1: size helps (both sources improve from smallest to largest)
    for source in ("diverse", "aco_only"):
        assert mean_rmse(source, SIZES[-1]) <= mean_rmse(source, SIZES[0]) * 1.1, (
            f"{source}: RMSE did not drop with size"
        )

    # claim 2: diversity helps at the largest size
    assert mean_rmse("diverse", SIZES[-1]) < mean_rmse("aco_only", SIZES[-1]), (
        "diverse dataset was not better than single-source at matched size"
    )
