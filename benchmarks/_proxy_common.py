"""Shared data collection for the §7 proxy-model benchmarks (Figs. 10-12).

Collecting exploration data and labeling a uniform test set with the
simulator is the expensive part; the three proxy benches share one
cached collection run.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.agents import make_agent, run_agent
from repro.core.dataset import ArchGymDataset
from repro.envs.dram import DRAMGymEnv

TARGETS = ("latency", "power", "energy")
DIVERSE_AGENTS = ("rw", "ga", "aco", "bo")
SAMPLES_PER_AGENT = 400
TEST_SET_SIZE = 150


def make_env() -> DRAMGymEnv:
    return DRAMGymEnv(workload="cloud-1", objective="power",
                      n_requests=300, cache_size=0)


@lru_cache(maxsize=1)
def collect_datasets() -> Tuple[ArchGymDataset, ArchGymDataset]:
    """(diverse multi-agent dataset, ACO-only dataset) of equal size."""
    env = make_env()
    diverse = ArchGymDataset()
    env.attach_dataset(diverse)
    for name in DIVERSE_AGENTS:
        agent = make_agent(name, env.action_space, seed=5)
        run_agent(agent, env, n_samples=SAMPLES_PER_AGENT, seed=5)
    env.detach_dataset()

    env2 = make_env()
    aco_only = ArchGymDataset()
    env2.attach_dataset(aco_only)
    agent = make_agent("aco", env2.action_space, seed=6)
    run_agent(agent, env2, n_samples=SAMPLES_PER_AGENT * len(DIVERSE_AGENTS), seed=6)
    env2.detach_dataset()
    return diverse, aco_only


@lru_cache(maxsize=1)
def uniform_test_set() -> Tuple[np.ndarray, np.ndarray]:
    """A simulator-labeled test set drawn uniformly from the space."""
    env = make_env()
    rng = np.random.default_rng(99)
    actions = [env.action_space.sample(rng) for _ in range(TEST_SET_SIZE)]
    X = np.stack([env.action_space.to_unit_vector(a) for a in actions])
    Y = np.array([[env.evaluate(a)[t] for t in TARGETS] for a in actions])
    return X, Y
