"""Fig. 8 — time to completion per agent (DRAMGym and FARSIGym).

Paper experiment: wall-clock time of each agent for a fixed number of
simulator samples. The paper's own conclusion is that wall-clock is a
*misleading* comparison basis (it conflates implementation maturity,
parallelism, and hardware), motivating sample efficiency instead — so
the assertions here are deliberately weak: every agent completes, and
agent overhead is visible but not the dominant term for the heavier
environment.

Evaluation caching is disabled so each step pays the real simulation.
"""


from repro.agents import AGENT_NAMES, make_agent, run_agent
from repro.envs.dram import DRAMGymEnv
from repro.envs.farsi_env import FARSIGymEnv

N_SAMPLES = 150


def run_fig8():
    times = {}
    for label, factory in (
        ("DRAMGym", lambda: DRAMGymEnv(workload="cloud-2", objective="power",
                                       n_requests=400, cache_size=0)),
        ("FARSIGym", lambda: FARSIGymEnv(workload="audio_decoder", cache_size=0)),
    ):
        for agent_name in AGENT_NAMES:
            env = factory()
            agent = make_agent(agent_name, env.action_space, seed=2)
            result = run_agent(agent, env, n_samples=N_SAMPLES, seed=2)
            times[(label, agent_name)] = (
                result.wall_time_s, env.stats.total_sim_time
            )
    return times


def test_fig8_time_to_completion(run_once):
    times = run_once(run_fig8)

    print("\n=== Fig. 8: time to completion (s), 150 samples/agent ===")
    print(f"{'env':10s} {'agent':6s} {'total':>9s} {'sim':>9s} {'overhead':>9s}")
    for (label, agent_name), (total, sim) in times.items():
        print(f"{label:10s} {agent_name:6s} {total:9.3f} {sim:9.3f} "
              f"{total - sim:9.3f}")

    for (label, agent_name), (total, sim) in times.items():
        assert total > 0 and sim >= 0
        assert total >= sim - 1e-6

    # BO carries the largest algorithmic overhead (GP refits) — the
    # paper's point that per-agent runtimes are not comparable
    dram_overhead = {
        a: times[("DRAMGym", a)][0] - times[("DRAMGym", a)][1]
        for a in AGENT_NAMES
    }
    assert dram_overhead["bo"] == max(dram_overhead.values()), (
        f"expected BO to dominate overhead: {dram_overhead}"
    )
