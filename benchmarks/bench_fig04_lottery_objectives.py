"""Fig. 4 — hyperparameter lottery across target objectives (DRAMGym).

Paper experiment: for each optimization objective (low power, low
latency, joint) and each memory trace, sweep every agent's
hyperparameters and look at the distribution of outcomes. Claims to
reproduce:

1. per-agent outcome distributions have large spread (the lottery),
2. each agent's *best* ticket is competitive with every other agent's
   best — no algorithm dominates.

Scaled down: 2 traces x 3 objectives, 4 lottery tickets per agent,
120 simulator samples per ticket.
"""

import pytest

from repro.agents import AGENT_NAMES
from repro.envs.dram import DRAMGymEnv
from repro.sweeps import run_lottery_sweep

TRACES = ("stream", "random")
OBJECTIVES = ("power", "latency", "joint")
N_TRIALS = 4
N_SAMPLES = 120


def run_fig4():
    reports = {}
    for trace in TRACES:
        for objective in OBJECTIVES:
            factory = lambda t=trace, o=objective: DRAMGymEnv(
                workload=t, objective=o, n_requests=300
            )
            reports[(trace, objective)] = run_lottery_sweep(
                factory, agents=AGENT_NAMES,
                n_trials=N_TRIALS, n_samples=N_SAMPLES, seed=42,
            )
    return reports


def test_fig4_hyperparameter_lottery_across_objectives(run_once):
    reports = run_once(run_fig4)

    print("\n=== Fig. 4: hyperparameter lottery, DRAMGym ===")
    spreads = []
    for (trace, objective), report in reports.items():
        print(f"\n[{trace} / {objective}]")
        print(report.print_table())
        spreads.extend(report.spread(a) for a in AGENT_NAMES)

    # claim 1: the lottery exists — hyperparameter choice causes real
    # spread in outcomes for a substantial share of (agent, setting) cells
    nonzero = [s for s in spreads if s > 1.0]
    assert len(nonzero) >= len(spreads) // 3, (
        f"expected widespread hyperparameter sensitivity, got spreads={spreads}"
    )

    # claim 2: with its best ticket, every agent is competitive in most
    # settings (normalized best >= 0.5 of the winner)
    weak_cells = 0
    total_cells = 0
    for report in reports.values():
        norm = report.normalized_best()
        for agent, score in norm.items():
            total_cells += 1
            if score < 0.5:
                weak_cells += 1
    assert weak_cells <= total_cells // 4, (
        f"{weak_cells}/{total_cells} agent/setting cells fell below 0.5 of "
        "the best agent — contradicts 'no one solution is necessarily better'"
    )


@pytest.mark.parametrize("objective", OBJECTIVES)
def test_fig4_single_objective_sweep(run_once, objective):
    """Per-objective benchmark entry (one trace) with timing."""
    report = run_once(
        lambda: run_lottery_sweep(
            lambda: DRAMGymEnv(workload="stream", objective=objective, n_requests=300),
            agents=("rw", "ga", "aco"),
            n_trials=2, n_samples=60, seed=1,
        )
    )
    print(f"\n[Fig. 4 entry: stream/{objective}]")
    print(report.print_table())
    assert all(len(v) == 2 for v in report.results.values())
