"""Fig. 4 — hyperparameter lottery across target objectives (DRAMGym).

Paper experiment: for each optimization objective (low power, low
latency, joint) and each memory trace, sweep every agent's
hyperparameters and look at the distribution of outcomes. Claims to
reproduce:

1. per-agent outcome distributions have large spread (the lottery),
2. each agent's *best* ticket is competitive with every other agent's
   best — no algorithm dominates.

Scaled down: 2 traces x 3 objectives, 4 lottery tickets per agent,
120 simulator samples per ticket.

The scale knobs are overridable for CI smoke runs — with e.g.
``ARCHGYM_BENCH_TRIALS=2 ARCHGYM_BENCH_SAMPLES=30`` the sweep pipeline
is exercised end-to-end in seconds; the paper-claim assertions only
fire at full scale, where the statistics are meaningful.
``ARCHGYM_BENCH_WORKERS`` fans trials out over a process pool (results
are worker-count invariant).
"""

import functools
import os

import pytest

from repro.agents import AGENT_NAMES
from repro.envs.dram import DRAMGymEnv
from repro.sweeps import run_lottery_sweep

TRACES = ("stream", "random")
OBJECTIVES = ("power", "latency", "joint")
N_TRIALS = int(os.environ.get("ARCHGYM_BENCH_TRIALS", "4"))
N_SAMPLES = int(os.environ.get("ARCHGYM_BENCH_SAMPLES", "120"))
WORKERS = int(os.environ.get("ARCHGYM_BENCH_WORKERS", "1"))
FULL_SCALE = N_TRIALS >= 4 and N_SAMPLES >= 120


def dram_factory(trace: str, objective: str):
    """Picklable env factory (``--workers`` crosses process boundaries)."""
    return functools.partial(
        DRAMGymEnv, workload=trace, objective=objective, n_requests=300
    )


def run_fig4():
    reports = {}
    for trace in TRACES:
        for objective in OBJECTIVES:
            reports[(trace, objective)] = run_lottery_sweep(
                dram_factory(trace, objective), agents=AGENT_NAMES,
                n_trials=N_TRIALS, n_samples=N_SAMPLES, seed=42,
                workers=WORKERS,
            )
    return reports


def test_fig4_hyperparameter_lottery_across_objectives(run_once):
    reports = run_once(run_fig4)

    print("\n=== Fig. 4: hyperparameter lottery, DRAMGym ===")
    spreads = []
    for (trace, objective), report in reports.items():
        print(f"\n[{trace} / {objective}]")
        print(report.print_table())
        spreads.extend(report.spread(a) for a in AGENT_NAMES)

    # smoke scale: only check the pipeline produced a full grid of trials
    assert all(
        len(r.results[a]) == N_TRIALS
        for r in reports.values() for a in AGENT_NAMES
    )
    if not FULL_SCALE:
        return

    # claim 1: the lottery exists — hyperparameter choice causes real
    # spread in outcomes for a substantial share of (agent, setting) cells
    nonzero = [s for s in spreads if s > 1.0]
    assert len(nonzero) >= len(spreads) // 3, (
        f"expected widespread hyperparameter sensitivity, got spreads={spreads}"
    )

    # claim 2: with its best ticket, every agent is competitive in most
    # settings (normalized best >= 0.5 of the winner)
    weak_cells = 0
    total_cells = 0
    for report in reports.values():
        norm = report.normalized_best()
        for agent, score in norm.items():
            total_cells += 1
            if score < 0.5:
                weak_cells += 1
    assert weak_cells <= total_cells // 4, (
        f"{weak_cells}/{total_cells} agent/setting cells fell below 0.5 of "
        "the best agent — contradicts 'no one solution is necessarily better'"
    )


@pytest.mark.parametrize("objective", OBJECTIVES)
def test_fig4_single_objective_sweep(run_once, objective):
    """Per-objective benchmark entry (one trace) with timing."""
    trials = min(N_TRIALS, 2)
    samples = min(N_SAMPLES, 60)
    report = run_once(
        lambda: run_lottery_sweep(
            dram_factory("stream", objective),
            agents=("rw", "ga", "aco"),
            n_trials=trials, n_samples=samples, seed=1,
            workers=WORKERS,
        )
    )
    print(f"\n[Fig. 4 entry: stream/{objective}]")
    print(report.print_table())
    assert all(len(v) == trials for v in report.results.values())
