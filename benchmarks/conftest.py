"""Shared helpers for the paper-figure benchmarks.

Every benchmark runs a scaled-down but structurally faithful version of
one paper experiment (see DESIGN.md §3 for the full index), prints the
figure's rows/series, and asserts its qualitative shape. Experiments
execute exactly once via ``benchmark.pedantic`` — they are stochastic
search runs, not microbenchmarks, so repeated timing rounds would only
burn time.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest


def pytest_collection_modifyitems(items):
    """Every benchmark is a full (if scaled-down) paper experiment —
    mark them ``slow`` so ``-m "not slow"`` keeps CI's default job
    fast and benchmarks stay opt-in."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture
def run_once(benchmark):
    """Run the experiment under the benchmark clock, exactly once."""

    def runner(fn: Callable[[], Any]) -> Any:
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner


def print_series(title: str, rows: dict) -> None:
    """Uniform printing for figure data series."""
    print(f"\n--- {title} ---")
    for key, value in rows.items():
        print(f"  {key}: {value}")
