"""Fig. 11 — predicted vs actual correlation, single-source vs diverse.

Paper experiment: scatter the proxy's predictions against the
simulator's ground truth for the power model (and the other metrics);
the single-source proxy correlates visibly worse than the
diverse-dataset proxy. Claim to reproduce: Pearson correlation
(predicted, actual) on a common test set is higher for the diverse
proxy on the power model.
"""

import numpy as np

from repro.proxy import ProxyCostModel

from _proxy_common import TARGETS, collect_datasets, make_env, uniform_test_set

TRAIN_SIZE = 1200


def run_fig11():
    diverse, aco_only = collect_datasets()
    X_test, Y_test = uniform_test_set()
    env = make_env()
    rng = np.random.default_rng(4)

    correlations = {}
    for source, dataset in (
        ("diverse", diverse.sample_balanced(TRAIN_SIZE, rng)),
        ("aco_only", aco_only.sample(TRAIN_SIZE, rng)),
    ):
        proxy = ProxyCostModel(env.action_space, TARGETS).fit_with_search(
            dataset, n_trials=4, seed=0
        )
        pred = proxy.predict_matrix(X_test)
        for j, t in enumerate(TARGETS):
            r = np.corrcoef(Y_test[:, j], pred[:, j])[0, 1]
            correlations[(source, t)] = float(r)
    return correlations


def test_fig11_predicted_vs_actual_correlation(run_once):
    correlations = run_once(run_fig11)

    print("\n=== Fig. 11: Pearson r (predicted vs actual) ===")
    print(f"{'target':10s} {'diverse':>10s} {'aco_only':>10s}")
    for t in TARGETS:
        print(f"{t:10s} {correlations[('diverse', t)]:>10.4f} "
              f"{correlations[('aco_only', t)]:>10.4f}")

    # the power model is the paper's focus metric
    assert correlations[("diverse", "power")] > correlations[("aco_only", "power")], (
        "diverse power proxy did not correlate better than single-source"
    )
    # the diverse proxy should correlate strongly across the board
    for t in TARGETS:
        assert correlations[("diverse", t)] > 0.7, (
            f"diverse proxy weakly correlated on {t}: {correlations[('diverse', t)]}"
        )
