"""Fig. 6 — GAMMA's domain-specific operators vs vanilla GA (MAESTRO).

Paper experiment: compare GAMMA (GA with aging/growth/reordering) and
its ablations (GA-V1, GA+RO, GA+AG, GA+GR) against ArchGym's vanilla GA
on the MAESTRO mapping problem for ResNet18 and VGG16, with a
hyperparameter sweep per variant. Claims to reproduce:

1. all GA variants find comparable best mappings (domain-specific
   operators are not decisive),
2. the well-tuned vanilla ArchGym GA is competitive with (or better
   than) GAMMA.
"""

import numpy as np

from repro.agents import GAMMA_VARIANTS, make_gamma_variant, run_agent
from repro.agents.ga import GAAgent
from repro.agents.hyperparams import sample_hyperparams
from repro.envs.maestro_env import MaestroGymEnv

WORKLOADS = ("resnet18", "vgg16")
N_TRIALS = 4
N_SAMPLES = 240


def run_fig6():
    rng = np.random.default_rng(0)
    results = {}  # (workload, variant) -> best runtime over sweep
    for workload in WORKLOADS:
        for variant in GAMMA_VARIANTS + ("GA ArchGym",):
            best_runtime = np.inf
            for __ in range(N_TRIALS):
                env = MaestroGymEnv(workload=workload)
                seed = int(rng.integers(2**31 - 1))
                if variant == "GA ArchGym":
                    hp = sample_hyperparams("ga", rng)
                    agent = GAAgent(env.action_space, seed=seed, **hp)
                else:
                    hp = sample_hyperparams("gamma", rng)
                    agent = make_gamma_variant(variant, env.action_space,
                                               seed=seed, **hp)
                res = run_agent(agent, env, n_samples=N_SAMPLES, seed=seed)
                if res.best_metrics.get("feasible"):
                    best_runtime = min(best_runtime, res.best_metrics["runtime"])
            results[(workload, variant)] = best_runtime
    return results


def test_fig6_gamma_vs_vanilla_ga(run_once):
    results = run_once(run_fig6)

    print("\n=== Fig. 6: GAMMA operators vs vanilla GA (best runtime, ms) ===")
    variants = GAMMA_VARIANTS + ("GA ArchGym",)
    header = f"{'workload':10s}" + "".join(f"{v:>12s}" for v in variants)
    print(header)
    for workload in WORKLOADS:
        row = f"{workload:10s}" + "".join(
            f"{results[(workload, v)]:>12.2f}" for v in variants
        )
        print(row)

    for workload in WORKLOADS:
        runtimes = {v: results[(workload, v)] for v in variants}
        assert all(np.isfinite(r) for r in runtimes.values()), (
            f"some variant found no feasible mapping on {workload}: {runtimes}"
        )
        best = min(runtimes.values())

        # claim 1: every variant is within 2x of the best (comparable)
        for v, r in runtimes.items():
            assert r <= 2.0 * best, (
                f"{v} on {workload} is far off the pace: {r:.2f} vs best {best:.2f}"
            )

        # claim 2: vanilla ArchGym GA competitive with full GAMMA
        assert runtimes["GA ArchGym"] <= 1.5 * runtimes["GAMMA"], (
            f"vanilla GA not competitive on {workload}: "
            f"{runtimes['GA ArchGym']:.2f} vs GAMMA {runtimes['GAMMA']:.2f}"
        )
