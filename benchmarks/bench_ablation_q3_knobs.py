"""Ablation — the Q3 exploration/exploitation knobs (paper §4, Table 2).

DESIGN.md's ablation targets: each agent family exposes one headline
exploration knob (ACO's greediness, BO's acquisition function, GA's
mutation rate, RL's algorithm variant). These benches sweep each knob
in isolation on a fixed environment and verify the knob actually moves
behaviour — the premise behind the hyperparameter lottery.
"""

import numpy as np

from repro.agents import ACOAgent, BOAgent, GAAgent, RLAgent, run_agent
from repro.envs.dram import DRAMGymEnv

N_SAMPLES = 150
SEEDS = (0, 1, 2)


def make_env():
    return DRAMGymEnv(workload="cloud-2", objective="latency", n_requests=250)


def _mean_best(agent_factory):
    scores = []
    for seed in SEEDS:
        env = make_env()
        agent = agent_factory(env, seed)
        res = run_agent(agent, env, n_samples=N_SAMPLES, seed=seed)
        scores.append(res.best_fitness)
    return float(np.mean(scores))


def test_ablation_aco_greediness(run_once):
    """Fully greedy ants must converge (entropy drop) harder than fully
    exploratory ants, and both extremes must complete."""

    def run():
        out = {}
        for greediness in (0.0, 0.5, 0.95):
            env = make_env()
            agent = ACOAgent(env.action_space, seed=1, n_ants=8,
                             greediness=greediness, evaporation_rate=0.3)
            res = run_agent(agent, env, n_samples=N_SAMPLES, seed=1)
            out[greediness] = (res.best_fitness, agent.trail_entropy())
        return out

    results = run_once(run)
    print("\n=== ablation: ACO greediness ===")
    for g, (fitness, entropy) in results.items():
        print(f"  greediness={g:4.2f}  best={fitness:10.4g}  trail_entropy={entropy:.3f}")
    assert results[0.95][1] <= results[0.0][1] + 1e-9, (
        "greedy ants should not keep higher trail entropy than exploratory ants"
    )


def test_ablation_bo_acquisition(run_once):
    """All three acquisitions must be functional and in the same league."""

    def run():
        return {
            acq: _mean_best(
                lambda env, seed, a=acq: BOAgent(
                    env.action_space, seed=seed, acquisition=a, n_init=10
                )
            )
            for acq in ("ei", "ucb", "pi")
        }

    results = run_once(run)
    print("\n=== ablation: BO acquisition function ===")
    for acq, score in results.items():
        print(f"  {acq}: mean best fitness {score:.4g}")
    top = max(results.values())
    assert all(score >= 0.25 * top for score in results.values()), results


def test_ablation_ga_mutation_rate(run_once):
    """Zero mutation collapses diversity; extreme mutation is random
    search. Both must run, and some intermediate rate must be at least
    as good as the degenerate extremes on average."""

    def run():
        return {
            rate: _mean_best(
                lambda env, seed, r=rate: GAAgent(
                    env.action_space, seed=seed, population_size=16,
                    mutation_rate=r,
                )
            )
            for rate in (0.0, 0.1, 1.0)
        }

    results = run_once(run)
    print("\n=== ablation: GA mutation rate ===")
    for rate, score in results.items():
        print(f"  mutation={rate:4.2f}  mean best {score:.4g}")
    assert results[0.1] >= min(results[0.0], results[1.0]) * 0.8, results


def test_ablation_rl_algo(run_once):
    """REINFORCE and PPO both learn (entropy drops), and both finish."""

    def run():
        out = {}
        for algo in ("reinforce", "ppo"):
            env = make_env()
            agent = RLAgent(env.action_space, seed=2, algo=algo, lr=0.05,
                            batch_size=16, entropy_coef=0.0)
            h0 = agent.policy_entropy()
            res = run_agent(agent, env, n_samples=N_SAMPLES, seed=2)
            out[algo] = (res.best_fitness, h0, agent.policy_entropy())
        return out

    results = run_once(run)
    print("\n=== ablation: RL algorithm ===")
    for algo, (fitness, h0, h1) in results.items():
        print(f"  {algo:10s} best={fitness:10.4g}  entropy {h0:.3f} -> {h1:.3f}")
    for algo, (fitness, h0, h1) in results.items():
        assert h1 < h0, f"{algo} policy did not sharpen"
