"""Fig. 12 — proxy cost-model speedup and RMSE vs the simulator.

Paper experiment: a random-forest proxy trained on a diverse ArchGym
dataset replaces the DRAM simulator, achieving ~2000x speedup at <1%
RMSE. Our simulator substrate is itself transaction-level (orders of
magnitude faster than the cycle-accurate DRAMSys the paper measures
against — see DESIGN.md), so the *ratio* here lands in the
hundreds-to-thousands range depending on batch size rather than
matching 2000x exactly; the claims asserted are

1. the proxy is at least two orders of magnitude faster per query than
   the simulator (batched inference),
2. the power model's relative RMSE on a common test set is small
   (single-digit percent at this scaled-down dataset size).
"""

import time

import numpy as np

from repro.proxy import ProxyCostModel

from _proxy_common import TARGETS, collect_datasets, make_env, uniform_test_set

TRAIN_SIZE = 1500
BATCH = 2000


def run_fig12():
    diverse, __ = collect_datasets()
    X_test, Y_test = uniform_test_set()
    env = make_env()
    rng = np.random.default_rng(8)

    proxy = ProxyCostModel(env.action_space, TARGETS).fit_with_search(
        diverse.sample(min(TRAIN_SIZE, len(diverse)), rng), n_trials=4, seed=0
    )
    rel_rmse = proxy.evaluate_relative(X_test, Y_test)

    # simulator time per query: best of three passes over fresh actions
    # (min-of-N suppresses scheduler noise inside long benchmark runs)
    actions = [env.action_space.sample(rng) for _ in range(10)]
    sim_times = []
    for __ in range(3):
        t0 = time.perf_counter()
        for a in actions:
            env.evaluate(a)
        sim_times.append((time.perf_counter() - t0) / len(actions))
    sim_per_query = min(sim_times)

    # proxy time per query, batched (the deployment mode: agents query in
    # batches, e.g. BO candidate pools or GA generations); best of three
    Xq = np.stack(
        [env.action_space.to_unit_vector(env.action_space.sample(rng))
         for __ in range(BATCH)]
    )
    proxy_times = []
    for __ in range(3):
        t0 = time.perf_counter()
        proxy.predict_matrix(Xq)
        proxy_times.append((time.perf_counter() - t0) / BATCH)
    proxy_per_query = min(proxy_times)

    return {
        "rel_rmse": rel_rmse,
        "sim_per_query_s": sim_per_query,
        "proxy_per_query_s": proxy_per_query,
        "speedup": sim_per_query / proxy_per_query,
    }


def test_fig12_proxy_speedup_and_rmse(run_once):
    out = run_once(run_fig12)

    print("\n=== Fig. 12: proxy speedup and RMSE ===")
    print(f"simulator:  {out['sim_per_query_s'] * 1e3:8.3f} ms/query")
    print(f"proxy:      {out['proxy_per_query_s'] * 1e6:8.2f} us/query (batched)")
    print(f"speedup:    {out['speedup']:8.0f} x")
    for t in TARGETS:
        print(f"rel RMSE {t:8s}: {out['rel_rmse'][t] * 100:6.2f} %")

    # claim 1: orders of magnitude faster than the (already fast)
    # transaction-level simulator substrate; the threshold carries slack
    # for machine-load variance within a full benchmark run
    assert out["speedup"] >= 50, f"speedup only {out['speedup']:.0f}x"

    # claim 2: power proxy in the single-digit-percent error regime
    assert out["rel_rmse"]["power"] < 0.08, (
        f"power RMSE too high: {out['rel_rmse']['power'] * 100:.2f}%"
    )
