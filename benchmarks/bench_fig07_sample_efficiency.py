"""Fig. 7 — mean normalized reward under sample-budget constraints.

Paper experiment: limit the number of samples an algorithm may draw
from the simulator (100 ... 250K in the paper; scaled here) and compare
mean normalized reward for DRAMGym and TimeloopGym. Claims to
reproduce:

1. in the low-sample regime, simple algorithms (RW/GA/ACO/BO) are
   competitive with each other,
2. RL is the weakest at low budgets (sample inefficiency) and improves
   markedly as the budget grows.
"""


from repro.agents import AGENT_NAMES
from repro.envs.dram import DRAMGymEnv
from repro.envs.timeloop_env import TimeloopGymEnv
from repro.sweeps import run_lottery_sweep

BUDGETS = (50, 200, 800)
N_TRIALS = 3


def run_fig7():
    panels = {}
    for label, factory in (
        ("DRAMGym", lambda: DRAMGymEnv(workload="cloud-1", objective="latency",
                                       n_requests=250)),
        ("TimeloopGym", lambda: TimeloopGymEnv(workload="alexnet",
                                               objective="latency")),
    ):
        report = run_lottery_sweep(
            factory, agents=AGENT_NAMES,
            n_trials=N_TRIALS, n_samples=max(BUDGETS), seed=17,
        )
        panels[label] = {b: report.mean_normalized_at(b) for b in BUDGETS}
    return panels


def test_fig7_sample_efficiency_regimes(run_once):
    panels = run_once(run_fig7)

    print("\n=== Fig. 7: mean normalized reward vs sample budget ===")
    for label, series in panels.items():
        print(f"\n[{label}]")
        header = f"{'budget':>8s}" + "".join(f"{a:>8s}" for a in AGENT_NAMES)
        print(header)
        for budget in BUDGETS:
            row = f"{budget:>8d}" + "".join(
                f"{series[budget][a]:>8.3f}" for a in AGENT_NAMES
            )
            print(row)

    for label, series in panels.items():
        low, high = series[BUDGETS[0]], series[BUDGETS[-1]]

        # claim 1: at low budget the non-RL agents are mutually competitive
        non_rl = [low[a] for a in AGENT_NAMES if a != "rl"]
        assert max(non_rl) - min(non_rl) <= 0.6, (
            f"non-RL agents diverged at low budget on {label}: {low}"
        )

        # claim 2: RL improves with budget
        assert high["rl"] >= low["rl"] - 1e-9, (
            f"RL did not improve with budget on {label}: {low['rl']} -> {high['rl']}"
        )

    # RL is the laggard at low budget on at least one panel (the paper's
    # "performance of reinforcement learning is poor" in that regime)
    rl_lags = sum(
        1 for series in panels.values()
        if series[BUDGETS[0]]["rl"] <= max(series[BUDGETS[0]].values()) - 0.05
    )
    assert rl_lags >= 1, "RL was never behind in the low-sample regime"
