"""Fig. 3 — the four environments' design spaces (setup artifact).

Fig. 3 of the paper tabulates each environment's parameters and total
search-space size (1.9e7 / 2e14 / 1.6e17 / 1e24 at the paper's full
granularity). Our grids keep every parameter axis at reduced
granularity (documented in DESIGN.md); this bench prints the table and
asserts the structural properties the experiments rely on: mixed
categorical/numeric axes and intractably large cardinalities.
"""

from repro.envs.dram import DRAMGymEnv
from repro.envs.farsi_env import FARSIGymEnv
from repro.envs.maestro_env import MaestroGymEnv
from repro.envs.timeloop_env import TimeloopGymEnv
from repro.core.spaces import Categorical


def run_fig3():
    envs = {
        "DRAMGym": DRAMGymEnv(workload="stream", n_requests=10),
        "TimeloopGym": TimeloopGymEnv(workload="alexnet"),
        "FARSIGym": FARSIGymEnv(workload="audio_decoder"),
        "MaestroGym": MaestroGymEnv(workload="resnet18"),
    }
    return {
        label: {
            "dimension": env.action_space.dimension,
            "cardinality": env.action_space.cardinality,
            "n_categorical": sum(
                isinstance(p, Categorical) for p in env.action_space
            ),
            "parameters": env.action_space.names,
        }
        for label, env in envs.items()
    }


def test_fig3_search_space_table(run_once):
    table = run_once(run_fig3)

    print("\n=== Fig. 3: design spaces ===")
    for label, row in table.items():
        print(f"\n[{label}] dim={row['dimension']} |A|={row['cardinality']:.3g} "
              f"categorical={row['n_categorical']}")
        print("  " + ", ".join(row["parameters"]))

    for label, row in table.items():
        # every space mixes symbolic choices with graded (pow2 / stepped)
        # numeric axes; pow2 grids are represented as ordered categoricals,
        # so the structural requirement is: at least one categorical axis
        # and a non-trivial dimension count
        assert row["n_categorical"] > 0, label
        assert row["dimension"] >= 9, label
        # far beyond exhaustive search at DSE budgets
        assert row["cardinality"] > 1e6, label

    # the paper's ordering of space sizes: DRAM < Timeloop/FARSI < Maestro
    assert table["DRAMGym"]["cardinality"] < table["MaestroGym"]["cardinality"]
