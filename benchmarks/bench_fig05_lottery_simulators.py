"""Fig. 5 — hyperparameter lottery across simulators / system complexity.

Paper experiment: run the lottery sweep on all four environments
(component level: DRAMGym; IP level: TimeloopGym; SoC level: FARSIGym;
mapping: MaestroGym). Claims to reproduce:

1. the lottery appears at every level of system complexity,
2. each agent's best ticket remains competitive on every environment
   (including FARSIGym where lower distance is better — handled by the
   driver's fitness orientation).

Scaled down: 4 tickets x 100 samples per agent per environment.
"""

from repro.agents import AGENT_NAMES
from repro.envs.dram import DRAMGymEnv
from repro.envs.farsi_env import FARSIGymEnv
from repro.envs.maestro_env import MaestroGymEnv
from repro.envs.timeloop_env import TimeloopGymEnv
from repro.sweeps import run_lottery_sweep

#: (label, factory) — the paper's Fig. 5 panels with their workloads.
PANELS = (
    ("DRAMGym/stream", lambda: DRAMGymEnv(workload="stream", objective="latency",
                                          n_requests=300)),
    ("TimeloopGym/resnet50", lambda: TimeloopGymEnv(workload="resnet50",
                                                    objective="latency")),
    ("FARSIGym/edge_detection", lambda: FARSIGymEnv(workload="edge_detection")),
    ("MaestroGym/resnet18", lambda: MaestroGymEnv(workload="resnet18")),
)

N_TRIALS = 4
N_SAMPLES = 100


def run_fig5():
    return {
        label: run_lottery_sweep(
            factory, agents=AGENT_NAMES,
            n_trials=N_TRIALS, n_samples=N_SAMPLES, seed=23,
        )
        for label, factory in PANELS
    }


def test_fig5_lottery_across_simulators(run_once):
    reports = run_once(run_fig5)

    print("\n=== Fig. 5: hyperparameter lottery across simulators ===")
    for label, report in reports.items():
        print(f"\n[{label}]")
        print(report.print_table())

    # claim 1: spread exists on every panel for at least some agents
    for label, report in reports.items():
        spreads = [report.spread(a) for a in AGENT_NAMES]
        assert max(spreads) > 0.5, f"no lottery on {label}: {spreads}"

    # claim 2: per panel, every agent's best ticket is competitive *on the
    # objective metric* (the paper's notion of optimality is meeting the
    # user-defined target, not the magnitude of the hyperbolic reward,
    # which is winner-take-all near the target)
    for label, report in reports.items():
        competitive = _competitiveness(label, report)
        weak = [a for a, ok in competitive.items() if not ok]
        assert len(weak) <= 1, (
            f"on {label}, agents {weak} were not competitive"
        )


def _competitiveness(label, report):
    """Per-agent: is the best design close to the overall winner in the
    panel's native objective units?"""
    if label.startswith("DRAMGym") or label.startswith("TimeloopGym"):
        # target-style objective: compare |observed - target| gaps. The
        # env derives its latency target; recover it from the reward spec.
        probe = dict(PANELS)[label]()
        target = probe.reward_spec.target
        gaps = {
            a: abs(report.best_result(a).best_metrics["latency"] - target) / target
            for a in AGENT_NAMES
        }
        best = min(gaps.values())
        return {a: g <= best + 0.15 for a, g in gaps.items()}
    if label.startswith("FARSIGym"):
        # distance-to-budget: competitive if within 0.5 of the winner
        dists = {a: report.best_result(a).best_reward for a in AGENT_NAMES}
        best = min(dists.values())
        return {a: d <= best + 0.5 for a, d in dists.items()}
    # MaestroGym: runtime ratio
    runtimes = {
        a: report.best_result(a).best_metrics["runtime"] for a in AGENT_NAMES
    }
    best = min(runtimes.values())
    return {a: r <= 1.5 * best for a, r in runtimes.items()}


def test_fig5_farsi_distance_orientation(run_once):
    """FARSI's panel reports *distance* (lower better); verify the sweep
    surfaces designs meeting budgets (distance 0) for at least one agent."""
    report = run_once(
        lambda: run_lottery_sweep(
            lambda: FARSIGymEnv(workload="edge_detection"),
            agents=("rw", "ga", "aco"),
            n_trials=3, n_samples=120, seed=5,
        )
    )
    print("\n[Fig. 5c focus] best distance per agent:")
    reached = 0
    for agent in ("rw", "ga", "aco"):
        best = report.best_result(agent)
        distance = best.best_reward
        print(f"  {agent}: distance={distance:.4f}")
        reached += distance == 0.0
    assert reached >= 1, "no agent met the SoC budgets"
