"""Table 4 — designed low-power DRAM controllers per agent.

Paper experiment: every agent searches for a memory controller hitting
a 1 W power target on a pointer-chasing trace. Claims to reproduce:

1. every agent finds at least one design satisfying the target,
2. agents agree on power-critical parameters while differing on
   parameters that don't matter for the target (the paper highlights
   'Max Active Trans.' = 1 for all agents; in our simulator the
   power-critical consensus is the refresh granularity).
"""

from repro.agents import AGENT_NAMES, make_agent, run_agent
from repro.envs.dram import DRAMGymEnv

N_SAMPLES = 350
TARGET_W = 1.0
TOLERANCE = 0.05


def run_table4():
    results = {}
    for name in AGENT_NAMES:
        env = DRAMGymEnv(
            workload="pointer_chase", objective="power",
            power_target_w=TARGET_W, n_requests=600,
        )
        agent = make_agent(name, env.action_space, seed=7)
        results[name] = run_agent(agent, env, n_samples=N_SAMPLES, seed=7)
    return results


def test_table4_designed_hardware(run_once):
    results = run_once(run_table4)

    agents = sorted(results)
    print(f"\n=== Table 4: designed 1 W controllers (pointer chase) ===")
    params = sorted(results[agents[0]].best_action)
    header = f"{'Parameter':24s}" + "".join(f"{a.upper():>16s}" for a in agents)
    print(header)
    for p in params:
        print(f"{p:24s}" + "".join(
            f"{str(results[a].best_action[p]):>16s}" for a in agents
        ))
    print(f"{'power (W)':24s}" + "".join(
        f"{results[a].best_metrics['power']:>16.4f}" for a in agents
    ))

    # claim 1: every agent meets the 1 W target (within tolerance)
    for a in agents:
        power = results[a].best_metrics["power"]
        assert abs(power - TARGET_W) <= TOLERANCE * TARGET_W, (
            f"{a} missed the target: {power:.4f} W"
        )

    # claim 2: designs differ somewhere — the target does not pin down
    # every parameter (the paper's "agents reach different page policies
    # / schedulers for the same 1 W")
    distinct_rows = sum(
        1 for p in params
        if len({str(results[a].best_action[p]) for a in agents}) > 1
    )
    assert distinct_rows >= 2, "all agents converged to an identical design"
