#!/usr/bin/env python
"""Offline approximation of ruff's F401 (unused import) check.

The dev container has no network and no vendored ruff, so CI's lint job
can't be reproduced bit-for-bit locally. This AST-level checker covers
the highest-signal subset: module-level imports that are never
referenced by name anywhere in the file. ``# noqa`` on the import line
suppresses a finding, and ``from __future__`` imports are exempt.

Usage: ``python tools/check_unused_imports.py [root ...]``
Exits non-zero if any unused import is found.
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")


def imported_names(tree: ast.AST):
    """Yield ``(bound_name, lineno)`` for every import binding."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield (alias.asname or alias.name).split(".")[0], node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name != "*":
                    yield alias.asname or alias.name, node.lineno


def used_names(tree: ast.AST):
    """Every name referenced plus every string literal (covers __all__)."""
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)
    return used


def check_file(path: pathlib.Path) -> int:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    used = used_names(tree)
    findings = 0
    for name, lineno in imported_names(tree):
        if "noqa" in lines[lineno - 1]:
            continue
        if name not in used:
            print(f"{path}:{lineno}: unused import {name!r}")
            findings += 1
    return findings


def main(argv) -> int:
    roots = argv or [r for r in DEFAULT_ROOTS if pathlib.Path(r).is_dir()]
    findings = 0
    for root in roots:
        for path in sorted(pathlib.Path(root).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            findings += check_file(path)
    if findings:
        print(f"{findings} unused import(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
