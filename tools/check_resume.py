#!/usr/bin/env python
"""Kill/resume integration check for durable sweep execution (CI).

Drives the real CLI end to end:

1. launches a sweep with ``--out-dir``, watches the shard directory,
   and SIGKILLs the process once a sentinel number of trial shards
   has landed (a genuine mid-run kill, not a simulated one);
2. re-runs the same command with ``--resume`` so only the missing
   trials execute;
3. runs the identical sweep uninterrupted into a fresh directory;
4. diffs the two exported reports (timing fields zeroed — everything
   else must match exactly).

Exit code 0 means the resumed report is identical to the clean one.
Usage: ``python tools/check_resume.py`` (repo root; sets PYTHONPATH=src
for its children itself).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SENTINEL_SHARDS = 2  # kill once this many trials have landed

SWEEP_ARGS = [
    "sweep", "--env", "DRAMGym-v0", "--agents", "rw,ga",
    "--trials", "3", "--samples", "60", "--seed", "7", "--workers", "1",
]


def _cli(*extra: str) -> list[str]:
    return [sys.executable, "-m", "repro", *SWEEP_ARGS, *extra]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _shard_count(out_dir: Path) -> int:
    return len(list(out_dir.glob("trial-*.json")))


def _normalized_rows(export_path: Path) -> dict:
    payload = json.loads(export_path.read_text())
    for row in payload["rows"]:
        row["wall_time_s"] = 0.0
        row["sim_time_s"] = 0.0
    return payload


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="archgym-resume-check-"))
    killed_dir = workdir / "killed"
    clean_dir = workdir / "clean"
    resumed_export = workdir / "resumed.json"
    clean_export = workdir / "clean.json"
    n_total = 6  # 2 agents x 3 trials

    # 1. start the sweep, kill it once SENTINEL_SHARDS shards exist
    proc = subprocess.Popen(
        _cli("--out-dir", str(killed_dir)),
        env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if _shard_count(killed_dir) >= SENTINEL_SHARDS:
            proc.kill()
            proc.wait()
            break
        if proc.poll() is not None:
            break
        time.sleep(0.02)
    else:
        proc.kill()
        proc.wait()
        print("FAIL: sweep produced no shards within the deadline")
        return 1

    at_kill = _shard_count(killed_dir)
    if not 0 < at_kill < n_total:
        print(
            f"FAIL: kill landed after {at_kill}/{n_total} shards — the "
            "check needs a genuine mid-run interruption; raise --samples "
            "or lower SENTINEL_SHARDS"
        )
        return 1
    print(f"killed sweep after {at_kill}/{n_total} shards")

    # 2. resume the killed sweep
    subprocess.run(
        _cli("--out-dir", str(killed_dir), "--resume",
             "--export", str(resumed_export)),
        env=_env(), cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
    )
    resumed_count = _shard_count(killed_dir)
    if resumed_count != n_total:
        print(f"FAIL: resume finished with {resumed_count}/{n_total} shards")
        return 1
    print(f"resume completed the remaining {n_total - at_kill} trials")

    # 3. uninterrupted reference run
    subprocess.run(
        _cli("--out-dir", str(clean_dir), "--export", str(clean_export)),
        env=_env(), cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
    )

    # 4. diff
    resumed = _normalized_rows(resumed_export)
    clean = _normalized_rows(clean_export)
    if resumed != clean:
        print("FAIL: resumed report differs from the clean run")
        for i, (r, c) in enumerate(zip(resumed["rows"], clean["rows"])):
            if r != c:
                print(f"  row {i} resumed: {json.dumps(r, sort_keys=True)}")
                print(f"  row {i} clean:   {json.dumps(c, sort_keys=True)}")
        return 1
    print("OK: resumed report is identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
