"""Shared plumbing for the CLI integration checks
(`check_service.py`, `check_multihost.py`).

One copy of the serve-process lifecycle (spawn, banner parse, healthz
poll) and of the export-row normalization the checks diff on — so the
CI jobs cannot drift in what they zero before comparing.
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_env() -> dict:
    """Subprocess environment with PYTHONPATH=src prepended."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def cli(*args: str) -> list:
    return [sys.executable, "-m", "repro", *args]


def spawn_server(*envs: str) -> subprocess.Popen:
    """Launch `repro serve` on a free port, stdout piped for the banner."""
    return subprocess.Popen(
        cli("serve", "--envs", ",".join(envs), "--port", "0"),
        env=check_env(), cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def healthz(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url + "/healthz", timeout=timeout) as resp:
        return json.loads(resp.read())


def wait_for_url(proc: subprocess.Popen) -> str:
    """Parse the bound URL from the serve banner, then poll healthz.

    The banner read sits under the same deadline as the health poll —
    a server that stalls before printing must fail the job in a
    minute, not hang it until the CI-level timeout.
    """
    deadline = time.monotonic() + 60
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RuntimeError("server never printed its startup banner")
        if proc.poll() is not None:
            raise RuntimeError("server exited before printing its banner")
        ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 0.5))
        if ready:
            break
    line = proc.stdout.readline().strip()
    if " at http://" not in line:
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    url = line.rsplit(" at ", 1)[1]
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("server exited before becoming healthy")
        try:
            if healthz(url, timeout=2.0).get("status") == "ok":
                return url
        except (urllib.error.URLError, OSError, ValueError):
            time.sleep(0.05)
    raise RuntimeError("server never answered /healthz")


def normalized_rows(export_path: Path, expect_remote: bool) -> dict:
    """Load an exported report with execution-dependent fields zeroed.

    Remote runs must show remote participation on every trial, with
    per-host ``remote_hosts`` provenance accounting for every remote
    evaluation; in-process runs must show none. Everything else is
    left intact for the bit-exact diff.
    """
    payload = json.loads(Path(export_path).read_text())
    for row in payload["rows"]:
        trial = f"{row['agent']}/{row['trial']}"
        if expect_remote:
            if row["remote_evals"] <= 0:
                raise RuntimeError(
                    f"trial {trial} reports zero remote evaluations — "
                    "the sweep did not go through the service(s)"
                )
            if sum(row["remote_hosts"].values()) != row["remote_evals"]:
                raise RuntimeError(
                    f"trial {trial}: remote_hosts {row['remote_hosts']} "
                    f"does not account for {row['remote_evals']} remote "
                    "evaluations"
                )
        elif row["remote_evals"] != 0:
            raise RuntimeError(
                f"in-process trial {trial} reports remote evaluations"
            )
        row["wall_time_s"] = 0.0
        row["sim_time_s"] = 0.0
        row["remote_evals"] = 0
        row["remote_hosts"] = {}
    return payload


def diff_reports(remote_payload: dict, clean_payload: dict, label: str) -> bool:
    """Print a row-level diff; True when the payloads match."""
    if remote_payload == clean_payload:
        return True
    print(f"FAIL: {label} report differs from the in-process run")
    for i, (r, c) in enumerate(
        zip(remote_payload["rows"], clean_payload["rows"])
    ):
        if r != c:
            print(f"  row {i} {label}:    {json.dumps(r, sort_keys=True)}")
            print(f"  row {i} in-process: {json.dumps(c, sort_keys=True)}")
    return False
