#!/usr/bin/env python
"""Fig. 7-style sample-efficiency check for proxy-screened search (CI).

Drives the real CLI end to end:

1. seeds a bootstrap corpus (200 random DRAMGym ground-truth points,
   the "cluster has already accumulated a dataset" starting state of
   the paper's proxy experiments) into each run's shared-cache tier;
2. runs an unscreened GA baseline (4 lottery trials x 300 samples,
   ``--generation-dispatch``) and the proxy-screened run of the same
   lottery at an 8x oversample (4 trials x 60 real evaluations);
3. gates on the paper's claim: the screened run must reach a best
   cost within ``MAX_GAP`` of the baseline's while paying at least
   ``MIN_EVAL_RATIO`` x fewer real simulator evaluations;
4. reconciles the proxy accounting exactly — per trial and against
   the durable shards: ``accepted <= screened``, the refresh slice is
   at least the configured honesty floor, and the export rows carry
   the same counters the shard files do.

Everything is seeded, so the observed numbers replay bit-identically;
the gates below have real margin (gap 0.000, ratio 5.47 at the pinned
seeds) rather than sitting on a knife edge.

Exit code 0 means every gate held. Usage: ``python tools/check_proxy.py``
(repo root; sets PYTHONPATH=src for itself and its children).
"""

from __future__ import annotations

import json
import math
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

import repro  # noqa: E402
from repro.core.cache_store import SharedCacheStore  # noqa: E402
from repro.core.env import canonical_action_key  # noqa: E402

#: Screened best fitness may trail the unscreened baseline by at most
#: this relative gap (the paper's "within a few percent" claim).
MAX_GAP = 0.02
#: The screened run must pay at least this many times fewer real
#: (cache-missing) simulator evaluations than the baseline.
MIN_EVAL_RATIO = 5.0
#: Honesty floor: with --proxy-refresh 0.25 every screened generation
#: ground-truths ceil(0.25*k) rejected points on top of its k accepted,
#: so refresh evals are always >= 20% of a trial's accepted count.
MIN_REFRESH_SHARE = 0.2
BOOTSTRAP_POINTS = 200
BOOTSTRAP_SEED = 3

COMMON = [
    "sweep", "--env", "DRAMGym-v0", "--agents", "ga", "--trials", "4",
    "--seed", "5", "--workers", "1", "--shared-cache",
]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run(*args: str) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=_env(), cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"repro {' '.join(args[:1])} exited {proc.returncode}")
    return proc.stdout


def _bootstrap_corpus(boot: Path) -> None:
    """Ground-truth a diverse random slice of the design space — the
    shared-cache corpus a cluster would already hold."""
    env = repro.make("DRAMGym-v0")
    store = SharedCacheStore(boot)
    rng = np.random.default_rng(BOOTSTRAP_SEED)
    added = 0
    while added < BOOTSTRAP_POINTS:
        action = env.action_space.sample(rng)
        key = json.dumps(canonical_action_key(action), separators=(",", ":"))
        if store.get_encoded(key) is None:
            store.put_encoded(key, env.evaluate(action))
            added += 1


def _warmed(boot: Path, out_dir: Path) -> Path:
    out_dir.mkdir(parents=True)
    shutil.copytree(boot, out_dir / "shared-cache")
    return out_dir


def _rows(export: Path) -> list:
    return json.loads(export.read_text())["rows"]


def _shard_results(out_dir: Path) -> list:
    return [
        json.loads(p.read_text())["result"]
        for p in sorted(out_dir.glob("trial-*.json"))
    ]


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="archgym-proxy-check-"))
    boot = work / "boot"
    _bootstrap_corpus(boot)

    base_out = _warmed(boot, work / "base")
    scr_out = _warmed(boot, work / "scr")
    _run(*COMMON, "--samples", "300", "--generation-dispatch",
         "--out-dir", str(base_out), "--export", str(work / "base.json"))
    stdout = _run(*COMMON, "--samples", "60", "--proxy-screen",
                  "--proxy-oversample", "8", "--proxy-refresh", "0.25",
                  "--proxy-min-corpus", "64",
                  "--out-dir", str(scr_out), "--export", str(work / "scr.json"))

    failures = []
    if "proxy screen:" not in stdout:
        failures.append("screened sweep table is missing its proxy footer")

    base_rows = _rows(work / "base.json")
    scr_rows = _rows(work / "scr.json")

    # -- the Fig. 7 claim ---------------------------------------------------------
    base_best = max(r["best_fitness"] for r in base_rows)
    scr_best = max(r["best_fitness"] for r in scr_rows)
    gap = (base_best - scr_best) / abs(base_best)
    base_evals = sum(r["cache_misses"] for r in base_rows)
    scr_evals = sum(r["cache_misses"] for r in scr_rows)
    ratio = base_evals / max(1, scr_evals)
    print(f"best fitness: baseline {base_best:.4f}, screened {scr_best:.4f} "
          f"(gap {100 * gap:.2f}%)")
    print(f"real evaluations: baseline {base_evals}, screened {scr_evals} "
          f"({ratio:.2f}x fewer)")
    if gap > MAX_GAP:
        failures.append(
            f"screened best fitness trails the baseline by {100 * gap:.2f}% "
            f"(> {100 * MAX_GAP:.0f}% allowed)"
        )
    if ratio < MIN_EVAL_RATIO:
        failures.append(
            f"screened run saved only {ratio:.2f}x real evaluations "
            f"(>= {MIN_EVAL_RATIO:.0f}x required)"
        )

    # -- exact proxy accounting ---------------------------------------------------
    for row in scr_rows:
        tag = f"trial {row['trial']}"
        screened = row["proxy_screened"]
        accepted = row["proxy_accepted"]
        refresh = row["proxy_refresh_evals"]
        if screened <= 0:
            failures.append(f"{tag}: proxy gate never opened (screened=0)")
            continue
        if not 0 < accepted <= screened:
            failures.append(
                f"{tag}: accepted ({accepted}) outside (0, screened={screened}]"
            )
        if not 0 <= refresh <= accepted:
            failures.append(
                f"{tag}: refresh evals ({refresh}) outside [0, accepted={accepted}]"
            )
        if refresh < math.floor(MIN_REFRESH_SHARE * accepted):
            failures.append(
                f"{tag}: refresh evals {refresh} below the honesty floor "
                f"({MIN_REFRESH_SHARE:.0%} of {accepted} accepted)"
            )
        if not 0.0 < row["proxy_last_rmse"] <= 0.35:
            failures.append(
                f"{tag}: validation RMSE {row['proxy_last_rmse']} outside "
                "(0, 0.35] — the gate should not have served"
            )
    for row in base_rows:
        if row["proxy_screened"] or row["proxy_accepted"]:
            failures.append("unscreened baseline reported proxy activity")

    # -- shards carry the same counters the export does ---------------------------
    shard_counts = sorted(
        (r["proxy_screened"], r["proxy_accepted"], r["proxy_refresh_evals"])
        for r in _shard_results(scr_out)
    )
    export_counts = sorted(
        (r["proxy_screened"], r["proxy_accepted"], r["proxy_refresh_evals"])
        for r in scr_rows
    )
    if shard_counts != export_counts:
        failures.append(
            f"shard proxy counters {shard_counts} != export {export_counts}"
        )

    shutil.rmtree(work, ignore_errors=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("proxy screening check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
