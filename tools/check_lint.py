#!/usr/bin/env python
"""Invariant-lint gate (CI's `lint-invariants` job).

Runs the full ``repro.lint`` checker suite — rng-discipline,
lock-guard, counter-threading, fingerprint-coverage, wire-schema and
unused-import — over every first-party root and fails on any
unsuppressed finding. This is the single offline lint story: together
with ``python -m compileall`` it approximates CI's ruff job without
network access, and it enforces the repo-specific parity invariants
ruff cannot know about (see ``docs/static-analysis.md``).

Usage: ``python tools/check_lint.py`` (repo root). Exits non-zero
listing every finding.
"""

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main() -> int:
    import os

    from repro.lint.cli import DEFAULT_ROOTS, main as lint_main

    os.chdir(REPO_ROOT)
    roots = [root for root in DEFAULT_ROOTS if os.path.isdir(root)]
    code = lint_main(roots)
    if code == 0:
        print("OK: repro.lint found no unsuppressed findings "
              f"under {' '.join(roots)}")
    return code


if __name__ == "__main__":
    sys.exit(main())
