#!/usr/bin/env python
"""Documentation integrity check (CI's `docs` job).

Two gates over ``README.md`` and every ``docs/*.md``:

1. **Internal links resolve.** Every relative markdown link target
   (``[text](docs/ARCHITECTURE.md)``, ``[x](../README.md#quickstart)``)
   must point at a file that exists, and a ``#fragment`` — including
   same-file ``[x](#section)`` links — must match a heading in the
   target file (GitHub slug rules: lowercase, spaces to dashes,
   punctuation dropped). External ``http(s)``/``mailto`` links are
   left alone: CI has no network and availability is not this job's
   business.
2. **Quickstart commands are real.** Every ``--flag`` inside a fenced
   ``bash`` block's ``repro`` / ``python -m repro`` invocation must be
   an option the live CLI parser actually defines
   (``repro.cli.build_parser()``, subcommands included), so a renamed
   or removed flag breaks the docs job instead of the first reader
   who copy-pastes the recipe.

Usage: ``python tools/check_docs.py`` (repo root). Exits non-zero
listing every broken link / unknown flag.
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: ``[text](target)`` — target captured without the closing paren;
#: images (``![alt](...)``) are matched too and checked the same way.
_LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")


def doc_files():
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's heading-anchor slug: strip markdown emphasis/code
    ticks, lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text.strip())


def heading_slugs(path: pathlib.Path):
    slugs = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(github_slug(match.group(1)))
    return slugs


def strip_fences(text: str) -> str:
    """Markdown with fenced code blocks blanked, so a ``[x](y)`` inside
    example code is not link-checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def check_links(path: pathlib.Path):
    """Yield error strings for unresolvable relative links in ``path``."""
    for target in _LINK_RE.findall(strip_fences(path.read_text())):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = (path.parent / base).resolve() if base else path
        if not dest.exists():
            yield f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in heading_slugs(dest):
                yield (
                    f"{path.relative_to(REPO_ROOT)}: link -> {target} "
                    f"(no heading #{fragment} in "
                    f"{dest.relative_to(REPO_ROOT)})"
                )


def bash_blocks(path: pathlib.Path):
    """Yield each fenced ``bash``/``sh``/``console`` block's text."""
    block, lang, in_fence = [], "", False
    for line in path.read_text().splitlines():
        match = _FENCE_RE.match(line)
        if match:
            if in_fence:
                if lang in ("bash", "sh", "shell", "console"):
                    yield "\n".join(block)
                block, in_fence = [], False
            else:
                lang, in_fence = match.group(1), True
            continue
        if in_fence:
            block.append(line)


def cli_option_strings():
    """Every ``--flag`` the live CLI defines, across all subcommands."""
    from repro.cli import build_parser

    flags = set()
    stack = [build_parser()]
    while stack:
        parser = stack.pop()
        for action in parser._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
            choices = getattr(action, "choices", None)
            if isinstance(choices, dict):  # a subparsers action
                stack.extend(
                    c for c in choices.values() if hasattr(c, "_actions")
                )
    return flags


def repro_commands(block: str):
    """The ``repro`` CLI invocations in one bash block, with backslash
    continuations joined (``$`` prompts stripped)."""
    joined = re.sub(r"\\\n\s*", " ", block)
    for line in joined.splitlines():
        command = line.strip().lstrip("$").strip()
        if re.search(r"(^|\s)(python\s+-m\s+)?repro(\s|$)", command):
            yield command


def main() -> int:
    errors = []
    known_flags = cli_option_strings()
    if not known_flags:
        print("FAIL: could not harvest any CLI option strings")
        return 1
    files = doc_files()
    commands_checked = 0
    for path in files:
        errors.extend(check_links(path))
        for block in bash_blocks(path):
            for command in repro_commands(block):
                commands_checked += 1
                for flag in _FLAG_RE.findall(command):
                    if flag not in known_flags:
                        errors.append(
                            f"{path.relative_to(REPO_ROOT)}: bash block "
                            f"uses unknown CLI flag {flag} in: {command}"
                        )
    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        return 1
    print(
        f"OK: {len(files)} doc file(s) checked — links resolve, "
        f"{commands_checked} repro command(s) use only real CLI flags "
        f"({len(known_flags)} known)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
