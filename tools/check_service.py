#!/usr/bin/env python
"""Evaluation-service integration check (CI's `service` job).

Drives the real CLI end to end, mirroring tools/check_resume.py:

1. launches ``python -m repro serve`` on a free port and waits for
   ``GET /healthz`` to answer;
2. runs a seeded sweep through the service (``--service-url``) and
   exports the report;
3. runs the identical sweep in-process into a second export;
4. diffs the two reports — trial order, metrics, hyperparameters, and
   cache counters must match exactly (timing fields and the
   remote-evaluation counter, which legitimately differ, are zeroed);
5. asserts the service run really did dispatch remotely (non-zero
   ``remote_evals`` per trial, non-zero ``evaluations`` on healthz).

Exit code 0 means the service-backed report is bit-identical to the
in-process one. Usage: ``python tools/check_service.py`` (repo root;
sets PYTHONPATH=src for its children itself).
"""

from __future__ import annotations

import json
import os
import select
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import mkdtemp

REPO_ROOT = Path(__file__).resolve().parent.parent

SWEEP_ARGS = [
    "sweep", "--env", "DRAMGym-v0", "--agents", "rw,ga",
    "--trials", "2", "--samples", "40", "--seed", "11", "--workers", "1",
]


def _env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _cli(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def _wait_for_url(proc: subprocess.Popen) -> str:
    """Parse the bound URL from the serve banner, then poll healthz.

    The banner read sits under the same deadline as the health poll —
    a server that stalls before printing must fail the job in a
    minute, not hang it until the CI-level timeout.
    """
    deadline = time.monotonic() + 60
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise RuntimeError("server never printed its startup banner")
        if proc.poll() is not None:
            raise RuntimeError("server exited before printing its banner")
        ready, _, _ = select.select([proc.stdout], [], [], min(remaining, 0.5))
        if ready:
            break
    line = proc.stdout.readline().strip()
    if " at http://" not in line:
        raise RuntimeError(f"unexpected serve banner: {line!r}")
    url = line.rsplit(" at ", 1)[1]
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError("server exited before becoming healthy")
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2) as resp:
                health = json.loads(resp.read())
            if health.get("status") == "ok":
                return url
        except (urllib.error.URLError, OSError, ValueError):
            time.sleep(0.05)
    raise RuntimeError("server never answered /healthz")


def _healthz(url: str) -> dict:
    with urllib.request.urlopen(url + "/healthz", timeout=5) as resp:
        return json.loads(resp.read())


def _normalized_rows(export_path: Path, expect_remote: bool) -> dict:
    payload = json.loads(export_path.read_text())
    for row in payload["rows"]:
        if expect_remote and row["remote_evals"] <= 0:
            raise RuntimeError(
                f"trial {row['agent']}/{row['trial']} reports zero remote "
                "evaluations — the sweep did not go through the service"
            )
        if not expect_remote and row["remote_evals"] != 0:
            raise RuntimeError(
                f"in-process trial {row['agent']}/{row['trial']} reports "
                "remote evaluations"
            )
        row["wall_time_s"] = 0.0
        row["sim_time_s"] = 0.0
        row["remote_evals"] = 0
    return payload


def main() -> int:
    workdir = Path(mkdtemp(prefix="archgym-service-check-"))
    service_export = workdir / "service.json"
    clean_export = workdir / "clean.json"

    # 1. launch the server on a free port
    server = subprocess.Popen(
        _cli("serve", "--envs", "DRAMGym-v0", "--port", "0"),
        env=_env(), cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        url = _wait_for_url(server)
        print(f"server healthy at {url}")

        # 2. the same sweep, through the service
        subprocess.run(
            _cli(*SWEEP_ARGS, "--service-url", url,
                 "--export", str(service_export)),
            env=_env(), cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
            timeout=600,
        )
        evaluations = _healthz(url)["evaluations"]
        if evaluations <= 0:
            print("FAIL: server reports zero evaluations after the sweep")
            return 1
        print(f"service sweep done ({evaluations} server-side evaluations)")
    finally:
        server.terminate()
        server.wait(timeout=30)

    # 3. in-process reference run
    subprocess.run(
        _cli(*SWEEP_ARGS, "--export", str(clean_export)),
        env=_env(), cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
        timeout=600,
    )

    # 4./5. diff (remote participation already asserted during load)
    remote = _normalized_rows(service_export, expect_remote=True)
    clean = _normalized_rows(clean_export, expect_remote=False)
    if remote != clean:
        print("FAIL: service-backed report differs from the in-process run")
        for i, (r, c) in enumerate(zip(remote["rows"], clean["rows"])):
            if r != c:
                print(f"  row {i} service:    {json.dumps(r, sort_keys=True)}")
                print(f"  row {i} in-process: {json.dumps(c, sort_keys=True)}")
        return 1
    print("OK: service-backed report is identical to the in-process run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
