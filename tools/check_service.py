#!/usr/bin/env python
"""Evaluation-service integration check (CI's `service` job).

Drives the real CLI end to end, mirroring tools/check_resume.py:

1. launches ``python -m repro serve`` on a free port and waits for
   ``GET /healthz`` to answer;
2. runs a seeded sweep through the service (``--service-url``) and
   exports the report;
3. microbenchmarks the transport: the same 64 design points evaluated
   per-point (64 × ``POST /evaluate`` on one keep-alive connection)
   versus batched (one ``POST /evaluate_batch``) — the batch must use
   ≥ 3× fewer round trips (it uses 64× fewer) and less wall-clock;
   (:func:`generation_microbench` is the multi-host sibling — a real
   GA generation of 64 scattered over a 2-host pool must use ≥ 32×
   fewer round trips than per-point dispatch — run by
   ``tools/check_multihost.py`` in the ``multihost`` CI job), then
   :func:`straggler_microbench` injects a deliberately slow host into
   a 2-host pool and requires streaming dispatch with work stealing
   (``--pipeline``'s transport) to beat the barrier scatter on
   wall-clock with at least one steal and identical metrics, and
   :func:`auto_weights_microbench` requires a pool with
   ``auto_weights=True`` to observe the same speed gap via healthz
   service rates and visibly shift scattered load off the slow host,
   and :func:`fanout_microbench` requires ``async_dispatch=True`` to
   drive a 32-host pool with >= 8x fewer OS threads than threaded
   dispatch (one loop runner vs one thread per chunk/host) at no
   wall-clock regression and identical metrics;
4. runs the identical sweep in-process into a second export;
5. diffs the two reports — trial order, metrics, hyperparameters, and
   cache counters must match exactly (timing fields and the
   remote-evaluation counters, which legitimately differ, are zeroed);
6. asserts the service run really did dispatch remotely (non-zero
   ``remote_evals`` per trial, non-zero ``evaluations`` on healthz).

Exit code 0 means the service-backed report is bit-identical to the
in-process one and batching beats per-point requests. Usage:
``python tools/check_service.py`` (repo root; sets PYTHONPATH=src for
its children itself).
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path
from tempfile import mkdtemp

from _check_common import (
    REPO_ROOT,
    check_env,
    cli,
    diff_reports,
    healthz,
    normalized_rows,
    spawn_server,
    wait_for_url,
)

sys.path.insert(0, str(REPO_ROOT / "src"))

SWEEP_ARGS = [
    "sweep", "--env", "DRAMGym-v0", "--agents", "rw,ga",
    "--trials", "2", "--samples", "40", "--seed", "11", "--workers", "1",
]


def _microbench(url: str, n_points: int = 64) -> None:
    """Batched + keep-alive vs per-point requests over the same design
    points; fails the job unless batching wins on round trips (≥ 3×
    fewer) and wall-clock."""
    import numpy as np

    import repro
    from repro.core.env import canonical_action_key
    from repro.service import ServiceClient

    env = repro.make("DRAMGym-v0")
    rng = np.random.default_rng(0)
    actions, seen = [], set()
    while len(actions) < n_points:  # n_points *distinct* design points
        action = env.action_space.sample(rng)
        key = canonical_action_key(action)
        if key not in seen:
            seen.add(key)
            actions.append(action)
    env.close()

    per_point = ServiceClient(url, timeout_s=30.0, retries=0)
    batched = ServiceClient(url, timeout_s=30.0, retries=0)
    per_point_s, batched_s = float("inf"), float("inf")
    reps = 3  # best-of-3 per leg so one scheduler hiccup can't flake CI
    for _ in range(reps):
        start = time.perf_counter()
        per_point_results = [
            per_point.evaluate("DRAMGym-v0", action) for action in actions
        ]
        per_point_s = min(per_point_s, time.perf_counter() - start)
        start = time.perf_counter()
        # memoize off: both legs must pay the full simulation cost
        batched_results = batched.evaluate_batch(
            "DRAMGym-v0", actions, memoize=False
        )
        batched_s = min(batched_s, time.perf_counter() - start)

    if per_point.connections_opened != 1:
        raise RuntimeError(
            f"keep-alive broken: {reps * n_points} requests opened "
            f"{per_point.connections_opened} connections"
        )
    if batched_results != per_point_results:
        raise RuntimeError("batched metrics differ from per-point metrics")
    rt_ratio = (per_point.requests_sent / reps) / (batched.requests_sent / reps)
    print(
        f"microbench ({n_points} points, best of {reps}): "
        f"{per_point.requests_sent // reps} round trips / {per_point_s:.3f}s "
        f"per-point vs {batched.requests_sent // reps} round trip(s) / "
        f"{batched_s:.3f}s batched ({rt_ratio:.0f}x fewer round trips, "
        f"{per_point_s / batched_s:.1f}x faster)"
    )
    if rt_ratio < 3.0:
        raise RuntimeError(
            f"batching saved only {rt_ratio:.1f}x round trips (need >= 3x)"
        )
    if batched_s >= per_point_s:
        raise RuntimeError(
            f"batched evaluation ({batched_s:.3f}s) was not faster than "
            f"per-point ({per_point_s:.3f}s)"
        )


def generation_microbench(
    urls, population: int = 64, min_rt_ratio: float = 32.0
) -> None:
    """GA-generation dispatch over a host pool vs per-point dispatch.

    One real GA generation (``population`` distinct-by-construction
    design points from ``GAAgent.propose_batch``) is evaluated two
    ways over the same multi-host pool: per point (one
    ``POST /evaluate`` each, spread least-load/round-robin) and
    scattered (``HostPool.evaluate_batch_scatter`` — one
    ``POST /evaluate_batch`` per host, in parallel). The scattered leg
    must use ≥ ``min_rt_ratio``× fewer HTTP round trips (population 64
    over 2 hosts: 64 vs 2 = 32×) and less wall-clock, and the metrics
    must match point for point. Raises on any violation — this is the
    CI gate for generation-native search staying a transport win.
    """
    import repro
    from repro.agents.ga import GAAgent
    from repro.sweeps.hostpool import HostPool

    env = repro.make("DRAMGym-v0")
    agent = GAAgent(env.action_space, seed=0, population_size=population)
    generation = agent.propose_batch()
    env.close()
    if len(generation) != population:
        raise RuntimeError(
            f"GA proposed {len(generation)} points, wanted {population}"
        )

    def pool_round_trips(pool):
        return sum(h.client.requests_sent for h in pool._hosts)

    per_point_pool = HostPool(urls, timeout_s=30.0, retries=0)
    scatter_pool = HostPool(urls, timeout_s=30.0, retries=0)
    per_point_s, scatter_s = float("inf"), float("inf")
    reps = 3  # best-of-3 per leg so one scheduler hiccup can't flake CI
    for _ in range(reps):
        start = time.perf_counter()
        per_point_results = [
            per_point_pool.evaluate("DRAMGym-v0", action)
            for action in generation
        ]
        per_point_s = min(per_point_s, time.perf_counter() - start)
        start = time.perf_counter()
        # memoize off: both legs must pay the full simulation cost
        scatter_results, scatter_hosts = scatter_pool.evaluate_batch_scatter(
            "DRAMGym-v0", generation, memoize=False
        )
        scatter_s = min(scatter_s, time.perf_counter() - start)

    if scatter_results != per_point_results:
        raise RuntimeError(
            "scattered generation metrics differ from per-point metrics"
        )
    hosts_used = {h for h in scatter_hosts if h is not None}
    if len(hosts_used) != len(scatter_pool.urls):
        raise RuntimeError(
            f"generation scatter used {sorted(hosts_used)}, expected all "
            f"of {scatter_pool.urls}"
        )
    per_point_rt = pool_round_trips(per_point_pool) / reps
    scatter_rt = pool_round_trips(scatter_pool) / reps
    rt_ratio = per_point_rt / scatter_rt
    print(
        f"generation microbench (population {population}, "
        f"{len(scatter_pool.urls)} hosts, best of {reps}): "
        f"{per_point_rt:.0f} round trips / {per_point_s:.3f}s per-point vs "
        f"{scatter_rt:.0f} round trips / {scatter_s:.3f}s scattered "
        f"({rt_ratio:.0f}x fewer round trips, "
        f"{per_point_s / scatter_s:.1f}x faster)"
    )
    if rt_ratio < min_rt_ratio:
        raise RuntimeError(
            f"generation dispatch saved only {rt_ratio:.1f}x round trips "
            f"(need >= {min_rt_ratio:.0f}x)"
        )
    if scatter_s >= per_point_s:
        raise RuntimeError(
            f"scattered generation ({scatter_s:.3f}s) was not faster than "
            f"per-point dispatch ({per_point_s:.3f}s)"
        )


def _slow_dram_env(delay_s: float):
    """A DRAMGym whose cost model is artificially slow — the injected
    straggler host of :func:`straggler_microbench`."""
    import time as _time

    import repro

    env = repro.make("DRAMGym-v0")
    true_evaluate = env.evaluate

    def slow_evaluate(action):
        _time.sleep(delay_s)
        return true_evaluate(action)

    env.evaluate = slow_evaluate
    return env


def straggler_microbench(
    population: int = 32, delay_s: float = 0.05, unit_size: int = 2
) -> None:
    """Barrier scatter vs streaming dispatch over a pool with one
    deliberately slow host.

    One real GA generation is evaluated two ways over a 2-host pool
    whose first host sleeps ``delay_s`` per design point: scattered
    (``HostPool.evaluate_batch_scatter`` — a *barrier*, so the call
    waits for the straggler's whole half) and streamed
    (``HostPool.evaluate_batch_stream`` — hosts pull small work units,
    the idle fast host work-steals the straggler's in-flight unit, and
    the stream finishes as soon as every result is known). The
    pipelined leg must beat the barrier on wall-clock, steal at least
    once, and produce point-identical metrics. Raises on any
    violation — this is the CI gate for streaming dispatch actually
    removing the straggler barrier.
    """
    import functools

    import repro
    from repro.agents.ga import GAAgent
    from repro.service import EvaluationService
    from repro.sweeps.hostpool import HostPool

    env = repro.make("DRAMGym-v0")
    agent = GAAgent(env.action_space, seed=0, population_size=population)
    generation = agent.propose_batch()
    env.close()

    slow = EvaluationService()
    slow.register("DRAMGym-v0", functools.partial(_slow_dram_env, delay_s))
    fast = EvaluationService()
    fast.register("DRAMGym-v0", functools.partial(repro.make, "DRAMGym-v0"))
    slow.start()
    fast.start()
    try:
        barrier_pool = HostPool([slow.url, fast.url], timeout_s=60.0, retries=0)
        stream_pool = HostPool([slow.url, fast.url], timeout_s=60.0, retries=0)

        start = time.perf_counter()
        barrier_results, _ = barrier_pool.evaluate_batch_scatter(
            "DRAMGym-v0", generation, memoize=False
        )
        barrier_s = time.perf_counter() - start

        start = time.perf_counter()
        streamed: list = [None] * len(generation)
        for begin, metrics_list, _ in stream_pool.evaluate_batch_stream(
            "DRAMGym-v0", generation, memoize=False, unit_size=unit_size
        ):
            streamed[begin:begin + len(metrics_list)] = metrics_list
        stream_s = time.perf_counter() - start
    finally:
        slow.stop()
        fast.stop()

    if streamed != barrier_results:
        raise RuntimeError("streamed metrics differ from barrier metrics")
    print(
        f"straggler microbench (population {population}, one host "
        f"{delay_s * 1e3:.0f}ms/point slower): {barrier_s:.3f}s barrier "
        f"scatter vs {stream_s:.3f}s pipelined "
        f"({barrier_s / stream_s:.1f}x faster, "
        f"{stream_pool.stream_steals} steal(s), "
        f"{stream_pool.stream_duplicates} duplicate(s) discarded)"
    )
    if stream_pool.stream_steals < 1:
        raise RuntimeError(
            "streaming dispatch never work-stole the straggler's remainder"
        )
    if stream_s >= barrier_s:
        raise RuntimeError(
            f"pipelined dispatch ({stream_s:.3f}s) was not faster than the "
            f"barrier scatter ({barrier_s:.3f}s) despite the straggler"
        )


def auto_weights_microbench(
    population: int = 32, delay_s: float = 0.03, generations: int = 6
) -> None:
    """Self-tuning dispatch weights over a heterogeneous 2-host pool.

    Scatters ``generations`` population-``population`` batches over a
    pool whose first host sleeps ``delay_s`` per design point, with
    ``auto_weights=True`` (observed service rates blended into the
    dispatch weights after every batch). The first batch splits evenly
    — the pool has no measurements yet — but once the speed gap is
    observed, the slow host's effective weight must drop below the
    fast host's (never below the starvation floor) and its share of
    the scattered points must fall visibly behind: over the whole run
    the slow host must answer less than half as many points as the
    fast one. Raises on any violation — this is the CI gate for
    heterogeneous fleets actually rebalancing.
    """
    import functools

    import numpy as np

    import repro
    from repro.service import EvaluationService
    from repro.sweeps.hostpool import HostPool

    env = repro.make("DRAMGym-v0")
    rng = np.random.default_rng(0)
    batches = [
        [env.action_space.sample(rng) for _ in range(population)]
        for _ in range(generations)
    ]
    env.close()

    slow = EvaluationService()
    slow.register("DRAMGym-v0", functools.partial(_slow_dram_env, delay_s))
    fast = EvaluationService()
    fast.register("DRAMGym-v0", functools.partial(repro.make, "DRAMGym-v0"))
    slow.start()
    fast.start()
    try:
        pool = HostPool(
            [slow.url, fast.url], timeout_s=60.0, retries=0,
            auto_weights=True, auto_weights_interval_s=0.0,
        )
        for batch in batches:
            # memoize off: every point pays the full simulation cost,
            # so the observed rates reflect the real speed gap
            pool.evaluate_batch_scatter("DRAMGym-v0", batch, memoize=False)
        slow_evals, fast_evals = slow.evaluations, fast.evaluations
        slow_url, fast_url = slow.url, fast.url
    finally:
        slow.stop()
        fast.stop()

    eff = pool.effective_weights_by_host
    print(
        f"auto-weights microbench ({generations} x {population} points, "
        f"one host {delay_s * 1e3:.0f}ms/point slower): slow host answered "
        f"{slow_evals}, fast host {fast_evals} "
        f"(effective weights {eff[slow_url]:.2f} vs {eff[fast_url]:.2f}, "
        f"{pool.auto_weight_updates} weight refresh(es))"
    )
    if pool.auto_weight_updates < 1:
        raise RuntimeError("auto-weights never refreshed from healthz")
    if not eff[slow_url] < eff[fast_url]:
        raise RuntimeError(
            f"slow host's effective weight ({eff[slow_url]:.2f}) did not "
            f"drop below the fast host's ({eff[fast_url]:.2f})"
        )
    if eff[slow_url] <= 0:
        raise RuntimeError("starvation floor violated: slow host weight <= 0")
    if slow_evals * 2 >= fast_evals:
        raise RuntimeError(
            f"traffic never rebalanced: slow host answered {slow_evals} of "
            f"{slow_evals + fast_evals} points (fast host {fast_evals})"
        )


def fanout_microbench(
    n_hosts: int = 32,
    population: int = 64,
    min_thread_ratio: float = 8.0,
    delay_s: float = 0.03,
    slack: float = 1.25,
) -> None:
    """One event loop vs one OS thread per chunk/host.

    Leg 1 (thread economy): the same GA generation is scattered *and*
    streamed over an ``n_hosts`` in-process pool twice — once with
    threaded dispatch, once with ``async_dispatch=True``. Every OS
    thread the pool starts carries a ``hostpool-`` name, so a
    monkeypatched ``threading.Thread.start`` counts them: the threaded
    core pays one thread per scatter chunk plus one per streaming
    host, the async core pays a single loop-runner thread for the
    whole pool. The threaded count must be >= ``min_thread_ratio``
    times the async count, with point-identical metrics.

    Leg 2 (no wall-clock regression): the same generation scattered
    over 2 real, deliberately slow hosts (``delay_s`` per point),
    best-of-3 per mode — the event loop must not be slower than
    threads by more than ``slack``. Together the legs are the CI gate
    for ``--async-dispatch``: the claimed resource win is real and it
    costs no latency.
    """
    import functools
    import threading

    import repro
    from repro.agents.ga import GAAgent
    from repro.service import EvaluationService
    from repro.sweeps.hostpool import HostPool

    env = repro.make("DRAMGym-v0")
    agent = GAAgent(env.action_space, seed=0, population_size=population)
    generation = agent.propose_batch()
    env.close()

    # -- leg 1: thread economy over a wide in-process fleet -------------------
    services = []
    for _ in range(n_hosts):
        svc = EvaluationService()
        svc.register(
            "DRAMGym-v0", functools.partial(repro.make, "DRAMGym-v0")
        )
        svc.start()
        services.append(svc)
    urls = [svc.url for svc in services]

    def run_pool(async_dispatch: bool):
        started: list = []
        orig_start = threading.Thread.start

        def counting_start(thread_self):
            if str(thread_self.name).startswith("hostpool-"):
                started.append(str(thread_self.name))
            return orig_start(thread_self)

        pool = HostPool(
            urls, timeout_s=60.0, retries=0, async_dispatch=async_dispatch
        )
        threading.Thread.start = counting_start
        try:
            scattered, _ = pool.evaluate_batch_scatter(
                "DRAMGym-v0", generation, memoize=False
            )
            streamed: list = [None] * len(generation)
            for begin, metrics_list, _ in pool.evaluate_batch_stream(
                "DRAMGym-v0", generation, memoize=False
            ):
                streamed[begin:begin + len(metrics_list)] = metrics_list
        finally:
            threading.Thread.start = orig_start
            pool.close()
        return scattered, streamed, started

    try:
        thr_scatter, thr_stream, thr_threads = run_pool(False)
        aio_scatter, aio_stream, aio_threads = run_pool(True)
    finally:
        for svc in services:
            svc.stop()

    if aio_scatter != thr_scatter or aio_stream != thr_stream:
        raise RuntimeError("async dispatch metrics differ from threaded")
    ratio = len(thr_threads) / max(1, len(aio_threads))
    print(
        f"fanout microbench leg 1 ({n_hosts} hosts, population "
        f"{population}): scatter+stream started {len(thr_threads)} pool "
        f"threads threaded vs {len(aio_threads)} async "
        f"({ratio:.0f}x fewer)"
    )
    if len(aio_threads) > 2:
        raise RuntimeError(
            f"async dispatch started {len(aio_threads)} pool threads "
            "(the whole point is one loop runner)"
        )
    if ratio < min_thread_ratio:
        raise RuntimeError(
            f"async dispatch saved only {ratio:.1f}x threads "
            f"(need >= {min_thread_ratio:.0f}x)"
        )

    # -- leg 2: no wall-clock regression on real (slow) hosts -----------------
    slow_a = EvaluationService()
    slow_a.register("DRAMGym-v0", functools.partial(_slow_dram_env, delay_s))
    slow_b = EvaluationService()
    slow_b.register("DRAMGym-v0", functools.partial(_slow_dram_env, delay_s))
    slow_a.start()
    slow_b.start()
    try:
        def best_of(async_dispatch: bool, reps: int = 3):
            pool = HostPool(
                [slow_a.url, slow_b.url], timeout_s=60.0, retries=0,
                async_dispatch=async_dispatch,
            )
            best, results = float("inf"), None
            try:
                for _ in range(reps):
                    start = time.perf_counter()
                    results, _ = pool.evaluate_batch_scatter(
                        "DRAMGym-v0", generation, memoize=False
                    )
                    best = min(best, time.perf_counter() - start)
            finally:
                pool.close()
            return best, results

        threaded_s, threaded_results = best_of(False)
        async_s, async_results = best_of(True)
    finally:
        slow_a.stop()
        slow_b.stop()

    if async_results != threaded_results:
        raise RuntimeError(
            "async dispatch metrics differ from threaded on the slow pool"
        )
    print(
        f"fanout microbench leg 2 (2 hosts, {delay_s * 1e3:.0f}ms/point, "
        f"best of 3): {threaded_s:.3f}s threaded scatter vs "
        f"{async_s:.3f}s async ({threaded_s / async_s:.2f}x)"
    )
    if async_s > threaded_s * slack:
        raise RuntimeError(
            f"async scatter ({async_s:.3f}s) regressed more than "
            f"{slack:.2f}x past threaded ({threaded_s:.3f}s)"
        )


def main() -> int:
    workdir = Path(mkdtemp(prefix="archgym-service-check-"))
    service_export = workdir / "service.json"
    clean_export = workdir / "clean.json"

    # 1. launch the server on a free port
    server = spawn_server("DRAMGym-v0")
    try:
        url = wait_for_url(server)
        print(f"server healthy at {url}")

        # 2. the same sweep, through the service
        subprocess.run(
            cli(*SWEEP_ARGS, "--service-url", url,
                "--export", str(service_export)),
            env=check_env(), cwd=REPO_ROOT, check=True,
            stdout=subprocess.DEVNULL, timeout=600,
        )
        evaluations = healthz(url)["evaluations"]
        if evaluations <= 0:
            print("FAIL: server reports zero evaluations after the sweep")
            return 1
        print(f"service sweep done ({evaluations} server-side evaluations)")

        # 3. batched + keep-alive vs per-point microbenchmark
        _microbench(url)
    finally:
        server.terminate()
        server.wait(timeout=30)

    # 3b. streaming dispatch must beat the barrier when one host straggles
    straggler_microbench()

    # 3c. observed-rate weights must shift load off a slow host
    auto_weights_microbench()

    # 3d. one event loop must replace the per-chunk/per-host threads
    # (>= 8x fewer) without regressing scatter wall-clock
    fanout_microbench()

    # 4. in-process reference run
    subprocess.run(
        cli(*SWEEP_ARGS, "--export", str(clean_export)),
        env=check_env(), cwd=REPO_ROOT, check=True, stdout=subprocess.DEVNULL,
        timeout=600,
    )

    # 5./6. diff (remote participation already asserted during load)
    remote = normalized_rows(service_export, expect_remote=True)
    clean = normalized_rows(clean_export, expect_remote=False)
    if not diff_reports(remote, clean, "service"):
        return 1
    print("OK: service-backed report is identical to the in-process run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
