#!/usr/bin/env python
"""Multi-host sweep integration check (CI's `multihost` job).

Drives the real CLI end to end, mirroring tools/check_service.py but
over a two-host pool with a mid-sweep kill:

1. launches **two** ``python -m repro serve`` processes and waits for
   both to answer ``GET /healthz``;
2. while both hosts are healthy, runs the GA-generation
   microbenchmark (``check_service.generation_microbench``): one real
   population-64 GA generation scattered over the 2-host pool must
   issue ≥ 32× fewer HTTP round trips than per-point dispatch (64 vs
   one ``POST /evaluate_batch`` per host) and be faster;
3. starts a seeded sweep spread over both hosts (two ``--service-url``
   flags — least-load scheduling with failover) with the replicated
   shared-cache tier on (``--shared-cache --cache-replicas 2`` — host
   A, the first URL, is the cache *primary*) exporting its report;
4. while the sweep runs, waits until host A has actually evaluated
   design points, then **SIGKILLs** it — the real thing, not a
   graceful shutdown — taking down the dispatch host *and* the cache
   primary in one blow;
5. the sweep must complete on the surviving host: the run is diffed
   against an identical in-process sweep with a local shared cache
   (timing and remote-eval provenance fields zeroed — everything
   else, including the cross-trial ``shared_cache_hits``, must match
   exactly, proving no trial was lost, duplicated, corrupted, or
   starved of its cache by the failover);
6. asserts the kill landed mid-sweep, that the survivor carried load
   afterwards, and that per-trial ``remote_hosts`` provenance accounts
   for every remote evaluation;
7. re-runs the identical sweep against the pool with host A still
   dead: every design point must be answered from host B's cache
   replica — **zero** re-simulated points (``remote_evals`` 0 on every
   trial, host B's ``evaluations`` counter unchanged) with search
   results still identical to the clean run.

Exit code 0 means a host died mid-sweep and nobody noticed in the
results — and its cache entries died with it without costing a single
re-simulation. Usage: ``python tools/check_multihost.py`` (repo root;
sets PYTHONPATH=src for its children itself).
"""

from __future__ import annotations

import copy
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
from pathlib import Path
from tempfile import mkdtemp

from _check_common import (
    REPO_ROOT,
    check_env,
    cli,
    diff_reports,
    healthz,
    normalized_rows,
    spawn_server,
    wait_for_url,
)
from check_service import generation_microbench

SWEEP_ARGS = [
    "sweep", "--env", "DRAMGym-v0", "--agents", "rw,ga",
    "--trials", "2", "--samples", "80", "--seed", "11", "--workers", "1",
]

#: The replicated shared-cache tier: every put fans out to two pool
#: hosts, so the primary's death must not lose a single entry.
CACHE_ARGS = ["--shared-cache", "--cache-replicas", "2"]


def main() -> int:
    workdir = Path(mkdtemp(prefix="archgym-multihost-check-"))
    multihost_export = workdir / "multihost.json"
    clean_export = workdir / "clean.json"
    replay_export = workdir / "replay.json"

    # 1. two independent evaluation hosts
    server_a = spawn_server("DRAMGym-v0")
    server_b = spawn_server("DRAMGym-v0")
    sweep = None
    try:
        url_a, url_b = wait_for_url(server_a), wait_for_url(server_b)
        print(f"hosts healthy at {url_a} and {url_b}")

        # 2. generation-native dispatch must stay a transport win:
        # population 64 over 2 hosts = 2 round trips vs 64 per-point
        generation_microbench([url_a, url_b], population=64)
        # the bench drove evaluations through both hosts; the kill
        # watch below must only count the *sweep's* evaluations
        baseline_a = healthz(url_a)["evaluations"]
        baseline_b = healthz(url_b)["evaluations"]

        # 3. the sweep, spread over both hosts, with the replicated
        # shared-cache tier (host A = cache primary)
        sweep = subprocess.Popen(
            cli(*SWEEP_ARGS, *CACHE_ARGS,
                "--service-url", url_a, "--service-url", url_b,
                "--service-timeout", "15", "--service-retries", "1",
                "--export", str(multihost_export)),
            env=check_env(), cwd=REPO_ROOT, stdout=subprocess.DEVNULL,
        )

        # 4. wait until host A demonstrably served part of the sweep,
        # then SIGKILL it mid-run
        kill_deadline = time.monotonic() + 120
        evals_a = baseline_a
        while time.monotonic() < kill_deadline:
            if sweep.poll() is not None:
                raise RuntimeError(
                    "sweep finished before host A served any evaluations — "
                    "raise --samples so the kill lands mid-run"
                )
            try:
                evals_a = healthz(url_a, timeout=1.0)["evaluations"]
            except (urllib.error.URLError, OSError, ValueError):
                evals_a = baseline_a
            if evals_a >= baseline_a + 10:
                break
            time.sleep(0.01)
        if evals_a < baseline_a + 10:
            raise RuntimeError("host A never reached 10 sweep evaluations")
        os.kill(server_a.pid, signal.SIGKILL)
        server_a.wait(timeout=30)
        print(
            f"SIGKILLed host A after {evals_a - baseline_a} sweep "
            "evaluations; sweep continues"
        )

        # 5. the sweep must survive on host B alone
        returncode = sweep.wait(timeout=600)
        if returncode != 0:
            print(f"FAIL: multi-host sweep exited {returncode} after the kill")
            return 1
        health_b = healthz(url_b)
        if health_b["evaluations"] <= baseline_b:
            print("FAIL: surviving host served zero sweep evaluations")
            return 1
        print(
            f"sweep survived the kill (host B served "
            f"{health_b['evaluations'] - baseline_b} sweep evaluations)"
        )

        # in-process reference run — shared cache in a local directory
        # so the cross-trial hit accounting is comparable row for row
        subprocess.run(
            cli(*SWEEP_ARGS, "--shared-cache",
                "--out-dir", str(workdir / "clean-shards"),
                "--export", str(clean_export)),
            env=check_env(), cwd=REPO_ROOT, check=True,
            stdout=subprocess.DEVNULL, timeout=600,
        )

        # 6. diff (remote participation + provenance asserted during load)
        multihost = normalized_rows(multihost_export, expect_remote=True)
        clean = normalized_rows(clean_export, expect_remote=False)
        if not diff_reports(multihost, clean, "multihost"):
            return 1
        print(
            "OK: a host died mid-sweep and the report is still identical "
            "to the in-process run (shared-cache hits included)"
        )

        # 7. zero-resimulation proof: the identical sweep again, with
        # the cache primary still dead — every point must come out of
        # host B's replica, never the simulator
        evals_b_before = healthz(url_b)["evaluations"]
        subprocess.run(
            cli(*SWEEP_ARGS, *CACHE_ARGS,
                "--service-url", url_a, "--service-url", url_b,
                "--service-timeout", "15", "--service-retries", "1",
                "--export", str(replay_export)),
            env=check_env(), cwd=REPO_ROOT, check=True,
            stdout=subprocess.DEVNULL, timeout=600,
        )
        evals_b_after = healthz(url_b)["evaluations"]
        replay = json.loads(replay_export.read_text())
        resimulated = sum(row["remote_evals"] for row in replay["rows"])
        if resimulated != 0:
            print(
                f"FAIL: cache replay re-simulated {resimulated} design "
                "point(s) after the cache primary's death"
            )
            return 1
        if evals_b_after != evals_b_before:
            print(
                f"FAIL: surviving host evaluated "
                f"{evals_b_after - evals_b_before} point(s) during the "
                "cache replay — the replica did not cover the sweep"
            )
            return 1
        # search results must still match the clean run; only the cache
        # accounting legitimately differs (every point is now a
        # cross-trial hit, so nothing ever misses through to the
        # simulator), so zero it on both sides
        for row in replay["rows"]:
            row["wall_time_s"] = 0.0
            row["sim_time_s"] = 0.0
            row["remote_evals"] = 0
            row["remote_hosts"] = {}
            row["shared_cache_hits"] = 0
            row["cache_misses"] = 0
        clean_no_hits = copy.deepcopy(clean)
        for row in clean_no_hits["rows"]:
            row["shared_cache_hits"] = 0
            row["cache_misses"] = 0
        if not diff_reports(replay, clean_no_hits, "cache-replay"):
            return 1
        print(
            "OK: the dead cache primary cost zero re-simulated points — "
            "host B's replica answered the whole sweep"
        )
        return 0
    finally:
        if sweep is not None and sweep.poll() is None:
            sweep.kill()
            sweep.wait(timeout=30)
        for server in (server_a, server_b):
            if server.poll() is None:
                server.terminate()
                server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
